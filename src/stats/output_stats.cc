#include "stats/output_stats.h"

#include <deque>
#include <stdexcept>

#include "stats/filters.h"

namespace lash {

OutputStatsResult ComputeOutputStats(const PatternMap& gsm_output,
                                     const PatternMap& flat_output,
                                     const Hierarchy& h) {
  OutputStatsResult result;
  result.total = gsm_output.size();
  if (gsm_output.empty()) return result;

  // Maximal / closed via the shared one-step marking pass (stats/filters.h).
  SequenceSet non_maximal = NonMaximalPatterns(gsm_output, h);
  SequenceSet non_closed = NonClosedPatterns(gsm_output, h);

  // Trivial: closure of the flat output under one-step generalization.
  // Every closure element is frequent (Lemma 1), hence in gsm_output; we
  // intersect defensively anyway.
  SequenceSet trivial;
  std::deque<Sequence> frontier;
  for (const auto& [s, freq] : flat_output) {
    if (gsm_output.contains(s) && trivial.insert(s).second) {
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    Sequence s = std::move(frontier.front());
    frontier.pop_front();
    Sequence copy = s;
    for (size_t i = 0; i < s.size(); ++i) {
      ItemId parent = h.Parent(s[i]);
      if (parent == kInvalidItem) continue;
      copy[i] = parent;
      if (gsm_output.contains(copy) && trivial.insert(copy).second) {
        frontier.push_back(copy);
      }
      copy[i] = s[i];
    }
  }

  const double total = static_cast<double>(result.total);
  result.maximal_pct =
      100.0 * static_cast<double>(result.total - non_maximal.size()) / total;
  result.closed_pct =
      100.0 * static_cast<double>(result.total - non_closed.size()) / total;
  result.nontrivial_pct =
      100.0 * static_cast<double>(result.total - trivial.size()) / total;
  return result;
}

PatternMap RemapPatterns(const PatternMap& patterns,
                         const std::vector<ItemId>& id_map) {
  PatternMap out;
  out.reserve(patterns.size());
  for (const auto& [s, freq] : patterns) {
    Sequence mapped;
    mapped.reserve(s.size());
    for (ItemId w : s) {
      if (w >= id_map.size() || id_map[w] == kInvalidItem) {
        throw std::invalid_argument("RemapPatterns: unmapped item id");
      }
      mapped.push_back(id_map[w]);
    }
    out.emplace(std::move(mapped), freq);
  }
  return out;
}

}  // namespace lash
