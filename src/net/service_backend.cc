#include "net/service_backend.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "io/io_error.h"
#include "obs/trace.h"
#include "serve/support_count.h"
#include "util/timer.h"

namespace lash::net {

ServiceBackend::ServiceBackend(std::vector<const Dataset*> shards,
                               serve::ServiceOptions options)
    : shards_(std::move(shards)) {
  if (options.metrics != nullptr) {
    count_requests_ = options.metrics->GetCounter("serve.count.requests");
  }
  options.post_resolve_hook = [this] { DrainReady(); };
  service_ = std::make_unique<serve::MiningService>(shards_,
                                                    std::move(options));
  count_pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
}

void ServiceBackend::Handle(std::string_view payload, Reply reply) {
  const MessageType type = PeekMessageType(payload);
  if (type == MessageType::kStatsRequest) {
    reply.Send(EncodeStatsResponse(service_->Stats()));
    return;
  }
  if (type == MessageType::kMetricsRequest) {
    reply.Send(EncodeMetricsResponse(service_->metrics().Snapshot()));
    return;
  }
  if (type == MessageType::kCountRequest) {
    CountRequest request = DecodeCountRequest(payload);
    if (request.shard >= shards_.size()) {
      reply.Send(EncodeErrorResponse(serve::ServeErrorCode::kInvalidTask,
                                     "count request names an unknown shard"));
      return;
    }
    if (count_requests_ != nullptr) count_requests_->Add();
    counts_inflight_.fetch_add(1, std::memory_order_relaxed);
    count_pool_->Submit(
        [this, request = std::move(request), reply = std::move(reply)] {
          RunCount(request, reply);
          counts_inflight_.fetch_sub(1, std::memory_order_relaxed);
        });
    return;
  }
  if (type != MessageType::kMineRequest &&
      type != MessageType::kMineRequestV2 &&
      type != MessageType::kMineRequestV3) {
    // Responses (or anything else) arriving at a server are a protocol
    // violation; throwing makes the event loop close the connection.
    throw IoError(IoErrorKind::kMalformed, 0,
                  "server received a non-request message");
  }
  const MineRequest request = DecodeMineRequest(payload);
  Pending pending{service_->Submit(request.spec), request.spec,
                  std::move(reply)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.push_back(std::move(pending));
  }
  // Submit resolves synchronously for cache hits and validation failures,
  // firing the hook *before* the push above — this drain covers that race.
  DrainReady();
}

size_t ServiceBackend::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size() + counts_inflight_.load(std::memory_order_relaxed);
}

void ServiceBackend::RunCount(const CountRequest& request,
                              const Reply& reply) {
  try {
    Stopwatch watch;
    obs::Span span(&obs::Tracer::Global(), request.trace, "serve.count");
    span.Tag("candidates", static_cast<double>(request.candidates.size()));
    span.Tag("shard", static_cast<double>(request.shard));
    const Dataset& dataset = *shards_[request.shard];
    const serve::CountQuery query{request.gamma, request.lambda,
                                  request.flat};
    std::vector<Frequency> supports(request.candidates.size(), 0);
    std::atomic<bool> expired{false};
    count_pool_->ParallelFor(request.candidates.size(), [&](size_t c) {
      if (request.deadline_ms > 0 && watch.ElapsedMs() >= request.deadline_ms) {
        expired.store(true, std::memory_order_relaxed);
      }
      if (expired.load(std::memory_order_relaxed)) return;
      const NamedPatternList one{request.candidates[c]};
      supports[c] = serve::CountSupports(dataset, one, query)[0];
    });
    if (expired.load(std::memory_order_relaxed)) {
      span.Tag("outcome", "deadline_exceeded");
      span.End();
      reply.Send(EncodeErrorResponse(serve::ServeErrorCode::kDeadlineExceeded,
                                     "count deadline exceeded"));
      return;
    }
    CountResponse response;
    response.supports = std::move(supports);
    response.server_ms = watch.ElapsedMs();
    // The span covers the counting, not the send — and ending it before the
    // reply means a tracer collecting in-process has the span once the
    // client sees the answer.
    span.Tag("outcome", "ok");
    span.End();
    reply.Send(EncodeCountResponse(response));
  } catch (const std::exception& e) {
    // Vocabulary/decoding failures must not escape into the pool (which
    // would terminate the process); they become a typed wire error.
    reply.Send(EncodeErrorResponse(serve::ServeErrorCode::kExecutionFailed,
                                   e.what()));
  }
}

void ServiceBackend::DrainReady() {
  std::list<Pending> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->result.ready()) {
        done.splice(done.end(), inflight_, it++);
      } else {
        ++it;
      }
    }
  }
  for (Pending& pending : done) {
    pending.reply.Send(BuildReplyPayload(pending));
  }
}

std::string ServiceBackend::BuildReplyPayload(const Pending& pending) {
  if (!pending.result.ok()) {
    return EncodeErrorResponse(pending.result.error_code(),
                               pending.result.error_message());
  }
  try {
    const serve::Response& response = pending.result.Get();
    MineResponse out;
    out.run = response.run();
    out.cache_hit = response.cache_hit;
    out.coalesced = response.coalesced;
    out.server_ms = response.latency_ms;
    out.patterns = NamePatterns(*shards_[pending.spec.shard],
                                response.patterns(),
                                out.run.used_flat_hierarchy);
    return EncodeMineResponse(out);
  } catch (const std::exception& e) {
    // Serialization failures (e.g. a rank that no longer names) must not
    // escape into the resolving thread; they become a typed wire error.
    return EncodeErrorResponse(serve::ServeErrorCode::kExecutionFailed,
                               e.what());
  }
}

}  // namespace lash::net
