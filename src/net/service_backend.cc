#include "net/service_backend.h"

#include <utility>

#include "io/io_error.h"

namespace lash::net {

ServiceBackend::ServiceBackend(std::vector<const Dataset*> shards,
                               serve::ServiceOptions options)
    : shards_(std::move(shards)) {
  options.post_resolve_hook = [this] { DrainReady(); };
  service_ = std::make_unique<serve::MiningService>(shards_,
                                                    std::move(options));
}

void ServiceBackend::Handle(std::string_view payload, Reply reply) {
  const MessageType type = PeekMessageType(payload);
  if (type == MessageType::kStatsRequest) {
    reply.Send(EncodeStatsResponse(service_->Stats()));
    return;
  }
  if (type == MessageType::kMetricsRequest) {
    reply.Send(EncodeMetricsResponse(service_->metrics().Snapshot()));
    return;
  }
  if (type != MessageType::kMineRequest &&
      type != MessageType::kMineRequestV2) {
    // Responses (or anything else) arriving at a server are a protocol
    // violation; throwing makes the event loop close the connection.
    throw IoError(IoErrorKind::kMalformed, 0,
                  "server received a non-request message");
  }
  const MineRequest request = DecodeMineRequest(payload);
  Pending pending{service_->Submit(request.spec), request.spec,
                  std::move(reply)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.push_back(std::move(pending));
  }
  // Submit resolves synchronously for cache hits and validation failures,
  // firing the hook *before* the push above — this drain covers that race.
  DrainReady();
}

size_t ServiceBackend::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

void ServiceBackend::DrainReady() {
  std::list<Pending> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->result.ready()) {
        done.splice(done.end(), inflight_, it++);
      } else {
        ++it;
      }
    }
  }
  for (Pending& pending : done) {
    pending.reply.Send(BuildReplyPayload(pending));
  }
}

std::string ServiceBackend::BuildReplyPayload(const Pending& pending) {
  if (!pending.result.ok()) {
    return EncodeErrorResponse(pending.result.error_code(),
                               pending.result.error_message());
  }
  try {
    const serve::Response& response = pending.result.Get();
    MineResponse out;
    out.run = response.run();
    out.cache_hit = response.cache_hit;
    out.coalesced = response.coalesced;
    out.server_ms = response.latency_ms;
    out.patterns = NamePatterns(*shards_[pending.spec.shard],
                                response.patterns(),
                                out.run.used_flat_hierarchy);
    return EncodeMineResponse(out);
  } catch (const std::exception& e) {
    // Serialization failures (e.g. a rank that no longer names) must not
    // escape into the resolving thread; they become a typed wire error.
    return EncodeErrorResponse(serve::ServeErrorCode::kExecutionFailed,
                               e.what());
  }
}

}  // namespace lash::net
