#include "net/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/io_error.h"

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace lash::net {

using serve::ServeError;
using serve::ServeErrorCode;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WorkerAddress ParseWorkerAddress(const std::string& address) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    throw ServeError(ServeErrorCode::kInvalidTask,
                     "worker address must be host:port, got \"" + address +
                         "\"");
  }
  WorkerAddress worker;
  worker.host = address.substr(0, colon);
  int port = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    const char c = address[i];
    if (c < '0' || c > '9' || (port = port * 10 + (c - '0')) > 65535) {
      throw ServeError(ServeErrorCode::kInvalidTask,
                       "invalid port in worker address \"" + address + "\"");
    }
  }
  if (port == 0) {
    throw ServeError(ServeErrorCode::kInvalidTask,
                     "invalid port in worker address \"" + address + "\"");
  }
  worker.port = static_cast<uint16_t>(port);
  return worker;
}

#ifdef __unix__

NetClient::NetClient(std::string host, uint16_t port, ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

NetClient::~NetClient() = default;

void NetClient::Disconnect() {
  fd_.Reset();
  rbuf_.clear();
}

void NetClient::EnsureConnected() {
  if (fd_.valid()) return;
  std::string last_error = "no attempt made";
  const int attempts = 1 + (options_.connect_retries > 0
                                ? options_.connect_retries
                                : 0);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.retry_backoff_ms << (attempt - 1)));
    }
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    try {
      SetNonBlocking(fd.get());
    } catch (const SocketError& e) {
      last_error = e.what();
      continue;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
      throw ServeError(ServeErrorCode::kInvalidTask,
                       "invalid worker host \"" + host_ + "\"");
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0 &&
        errno != EINPROGRESS) {
      last_error = std::string("connect: ") + std::strerror(errno);
      continue;
    }
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, options_.connect_timeout_ms);
    if (ready <= 0) {
      last_error = ready == 0 ? "connect timed out"
                              : std::string("poll: ") + std::strerror(errno);
      continue;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      last_error = std::string("connect: ") +
                   std::strerror(so_error != 0 ? so_error : errno);
      continue;
    }
    SetNoDelay(fd.get());
    fd_ = std::move(fd);
    rbuf_.clear();
    return;
  }
  throw ServeError(ServeErrorCode::kExecutionFailed,
                   "cannot connect to " + host_ + ":" +
                       std::to_string(port_) + " after " +
                       std::to_string(attempts) + " attempts (" + last_error +
                       ")");
}

void NetClient::WaitIo(short events) {
  while (true) {
    int timeout = -1;
    if (io_deadline_ms_ > 0) {
      const double remaining = io_deadline_ms_ - NowMs();
      if (remaining <= 0) {
        // The exchange is torn mid-frame; the connection cannot be reused.
        Disconnect();
        throw ServeError(ServeErrorCode::kDeadlineExceeded,
                         "request to " + host_ + ":" + std::to_string(port_) +
                             " timed out");
      }
      timeout = static_cast<int>(remaining) + 1;
    }
    pollfd pfd{fd_.get(), events, 0};
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready > 0) return;
    if (ready < 0 && errno != EINTR) {
      Disconnect();
      throw ServeError(ServeErrorCode::kExecutionFailed,
                       std::string("poll: ") + std::strerror(errno));
    }
  }
}

void NetClient::SendAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      WaitIo(POLLOUT);
      continue;
    }
    if (errno == EINTR) continue;
    Disconnect();
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     "connection to " + host_ + ":" + std::to_string(port_) +
                         " lost while sending: " + std::strerror(errno));
  }
}

std::string NetClient::ReadFrame() {
  std::string payload;
  while (true) {
    try {
      if (TryExtractFrame(&rbuf_, &payload) == FrameStatus::kFrame) {
        return payload;
      }
    } catch (const IoError& e) {
      Disconnect();
      throw ServeError(ServeErrorCode::kExecutionFailed,
                       std::string("malformed response frame: ") + e.what());
    }
    WaitIo(POLLIN);
    char buf[65536];
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    Disconnect();
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     "connection to " + host_ + ":" + std::to_string(port_) +
                         (n == 0 ? " closed by peer mid-exchange"
                                 : std::string(" lost while reading: ") +
                                       std::strerror(errno)));
  }
}

std::string NetClient::Exchange(const std::string& payload) {
  // A pooled connection can be stale (the server restarted or closed an
  // idle connection); a failure before any response byte arrives is safe
  // to retry once on a fresh connection. A timeout is not retried — the
  // budget is gone.
  const bool reused = fd_.valid();
  std::string frame;
  AppendFrame(&frame, payload);
  for (int attempt = 0;; ++attempt) {
    EnsureConnected();
    if (options_.io_timeout_ms > 0) {
      io_deadline_ms_ = NowMs() + options_.io_timeout_ms;
    } else {
      io_deadline_ms_ = 0;
    }
    try {
      SendAll(frame);
      return ReadFrame();
    } catch (const ServeError& e) {
      if (e.code() == ServeErrorCode::kExecutionFailed && reused &&
          attempt == 0 && rbuf_.empty()) {
        Disconnect();
        continue;
      }
      throw;
    }
  }
}

MineReply NetClient::Mine(const serve::TaskSpec& spec) {
  const double start_ms = NowMs();
  const std::string payload =
      Exchange(spec.shard_sigma != 0 ? EncodeMineRequestV3(spec)
               : spec.trace.active() ? EncodeMineRequestV2(spec)
                                     : EncodeMineRequest(spec));
  MineReply reply;
  try {
    const MessageType type = PeekMessageType(payload);
    if (type == MessageType::kErrorResponse) {
      const ErrorResponse error = DecodeErrorResponse(payload);
      throw ServeError(error.code, error.message);
    }
    if (type != MessageType::kMineResponse) {
      throw ServeError(ServeErrorCode::kExecutionFailed,
                       "unexpected response message type");
    }
    MineResponse response = DecodeMineResponse(payload);
    reply.run = std::move(response.run);
    reply.patterns = std::move(response.patterns);
    reply.cache_hit = response.cache_hit;
    reply.coalesced = response.coalesced;
    reply.server_ms = response.server_ms;
  } catch (const IoError& e) {
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     std::string("malformed mine response: ") + e.what());
  }
  reply.round_trip_ms = NowMs() - start_ms;
  return reply;
}

CountReply NetClient::Count(const CountRequest& request) {
  const double start_ms = NowMs();
  const std::string payload = Exchange(EncodeCountRequest(request));
  CountReply reply;
  try {
    const MessageType type = PeekMessageType(payload);
    if (type == MessageType::kErrorResponse) {
      const ErrorResponse error = DecodeErrorResponse(payload);
      throw ServeError(error.code, error.message);
    }
    if (type != MessageType::kCountResponse) {
      throw ServeError(ServeErrorCode::kExecutionFailed,
                       "unexpected response message type");
    }
    CountResponse response = DecodeCountResponse(payload);
    reply.supports = std::move(response.supports);
    reply.server_ms = response.server_ms;
  } catch (const IoError& e) {
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     std::string("malformed count response: ") + e.what());
  }
  reply.round_trip_ms = NowMs() - start_ms;
  return reply;
}

serve::ServiceStats NetClient::Stats() {
  const std::string payload = Exchange(EncodeStatsRequest());
  try {
    const MessageType type = PeekMessageType(payload);
    if (type == MessageType::kErrorResponse) {
      const ErrorResponse error = DecodeErrorResponse(payload);
      throw ServeError(error.code, error.message);
    }
    return DecodeStatsResponse(payload);
  } catch (const IoError& e) {
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     std::string("malformed stats response: ") + e.what());
  }
}

std::vector<obs::MetricSample> NetClient::Metrics() {
  const std::string payload = Exchange(EncodeMetricsRequest());
  try {
    const MessageType type = PeekMessageType(payload);
    if (type == MessageType::kErrorResponse) {
      const ErrorResponse error = DecodeErrorResponse(payload);
      throw ServeError(error.code, error.message);
    }
    return DecodeMetricsResponse(payload);
  } catch (const IoError& e) {
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     std::string("malformed metrics response: ") + e.what());
  }
}

#else  // !__unix__

NetClient::NetClient(std::string host, uint16_t port, ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

NetClient::~NetClient() = default;

void NetClient::Disconnect() {}

MineReply NetClient::Mine(const serve::TaskSpec&) {
  throw ServeError(ServeErrorCode::kExecutionFailed,
                   "lash::net requires a POSIX platform");
}

CountReply NetClient::Count(const CountRequest&) {
  throw ServeError(ServeErrorCode::kExecutionFailed,
                   "lash::net requires a POSIX platform");
}

serve::ServiceStats NetClient::Stats() {
  throw ServeError(ServeErrorCode::kExecutionFailed,
                   "lash::net requires a POSIX platform");
}

std::vector<obs::MetricSample> NetClient::Metrics() {
  throw ServeError(ServeErrorCode::kExecutionFailed,
                   "lash::net requires a POSIX platform");
}

std::string NetClient::Exchange(const std::string&) { return {}; }
void NetClient::EnsureConnected() {}
void NetClient::SendAll(const std::string&) {}
std::string NetClient::ReadFrame() { return {}; }
void NetClient::WaitIo(short) {}

#endif  // __unix__

}  // namespace lash::net
