#ifndef LASH_NET_WIRE_H_
#define LASH_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include <vector>

#include "io/result_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/mining_service.h"
#include "serve/task_spec.h"

/// The length-prefixed binary wire protocol of the serving tier (ROADMAP
/// "Network tier").
///
/// Framing rule: every message is `u32 LE payload length | payload`, and
/// every payload starts `u8 wire version | u8 message type | body`. The
/// length prefix covers the payload only (not itself); a peer can therefore
/// always read exactly 4 bytes, then exactly `length` bytes, with no
/// scanning or resynchronization. Frames above kMaxFramePayloadBytes and
/// payloads whose version byte is not kWireVersion are protocol errors — the
/// receiving side drops the connection rather than guessing.
///
/// Bodies reuse the repo's existing canonical encodings: a mine request
/// carries EncodeCacheKey bytes verbatim (serve/task_spec.h — the same bytes
/// that key the result cache key the wire), results use io/result_io.h, and
/// everything multi-byte is varint or 8-byte-LE double bits. All decoders go
/// through ByteReader, so malformed and truncated frames surface as the
/// typed IoError of io/io_error.h.
namespace lash::net {

/// Bump when any payload layout changes. Byte 0 of every payload.
inline constexpr uint8_t kWireVersion = 1;

/// Frame header: the u32 little-endian payload length.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Hard cap on one payload (defense against hostile/garbage length
/// prefixes; also the practical bound on one response's pattern stream).
inline constexpr uint32_t kMaxFramePayloadBytes = 256u << 20;

/// Byte 1 of every payload.
///
/// Adding a MessageType is forward-compatible and does NOT bump
/// kWireVersion (the version byte covers payload *layouts*): an old peer
/// receiving an unknown type rejects that one payload as malformed and
/// drops the connection, exactly as the framing contract specifies, while
/// v1 traffic keeps flowing. PR 9 added 6–8 under this rule — an un-traced
/// client talking to an upgraded worker, and vice versa for v1 requests,
/// exchanges byte-identical frames.
enum class MessageType : uint8_t {
  kMineRequest = 1,
  kMineResponse = 2,
  kErrorResponse = 3,
  kStatsRequest = 4,
  kStatsResponse = 5,
  /// kMineRequest plus a leading trace context (16-byte trace id + 8-byte
  /// LE parent span id). The response types are shared with v1.
  kMineRequestV2 = 6,
  kMetricsRequest = 7,
  kMetricsResponse = 8,
  /// Phase 2 of the router's two-phase candidate/count protocol (PR 10):
  /// "here are named candidate patterns — return this shard's exact
  /// support of each". Counting needs no mining, just hierarchy-aware
  /// (γ, λ)-matching against the shard corpus (serve/support_count.h).
  kCountRequest = 9,
  /// Index-aligned exact supports for one kCountRequest.
  kCountResponse = 10,
  /// kMineRequestV2 plus a varint shard-σ override between the deadline
  /// and the cache-key bytes. Clients pick this encoding iff
  /// `spec.shard_sigma != 0`, so default traffic stays byte-identical to
  /// v1/v2; the override travels outside the key bytes, exactly like
  /// shard routing and the deadline.
  kMineRequestV3 = 11,
};

/// Appends `payload` to `out` as one frame (length prefix + payload).
/// Throws IoError kMalformed if the payload exceeds kMaxFramePayloadBytes.
void AppendFrame(std::string* out, std::string_view payload);

/// Result of TryExtractFrame.
enum class FrameStatus {
  kNeedMore,  ///< `buffer` does not yet hold a complete frame.
  kFrame,     ///< One payload extracted; its bytes were consumed.
};

/// Extracts the next complete frame from the front of `buffer`. On kFrame,
/// `*payload` receives the payload bytes and the frame is erased from
/// `buffer`. Throws IoError kMalformed as soon as the length prefix exceeds
/// kMaxFramePayloadBytes (before the oversized payload is buffered).
FrameStatus TryExtractFrame(std::string* buffer, std::string* payload);

/// Validates the version byte of `payload` and returns its message type.
/// Throws IoError kBadVersion / kTruncated / kMalformed.
MessageType PeekMessageType(std::string_view payload);

/// A mining request as it crosses the wire: the target shard, the
/// client-side deadline, and the canonical cache-key bytes of the spec.
/// Execution-shape knobs (threads, job config) deliberately do not cross
/// the wire — they are the *server's* resources to shape, exactly as they
/// are excluded from the cache key.
struct MineRequest {
  serve::TaskSpec spec;
};

/// Payload of one kMineRequest. Any trace context on `spec` is dropped —
/// v1 bytes are what a pre-PR-9 client would have sent.
std::string EncodeMineRequest(const serve::TaskSpec& spec);

/// Payload of one kMineRequestV2: the v1 body prefixed with the spec's
/// trace context. The clients pick this encoding iff the spec carries an
/// active trace id, so untraced traffic stays byte-identical to v1.
std::string EncodeMineRequestV2(const serve::TaskSpec& spec);

/// Payload of one kMineRequestV3: the v2 body plus `varint shard_sigma`
/// between the deadline and the cache-key bytes. Clients pick this
/// encoding iff `spec.shard_sigma != 0` (an inactive trace travels as its
/// 24 zero bytes), so traffic without the override is byte-identical to
/// what a pre-V3 client sends.
std::string EncodeMineRequestV3(const serve::TaskSpec& spec);

/// Decodes a kMineRequest, kMineRequestV2, or kMineRequestV3 payload
/// (dispatches on the type byte; re-checks the version). A v1 payload
/// yields an inactive `spec.trace`; v1/v2 payloads yield
/// `spec.shard_sigma == 0`.
MineRequest DecodeMineRequest(std::string_view payload);

/// A successful mining answer: the run summary, the serving-layer
/// provenance bits, and the pattern stream in canonical wire order.
struct MineResponse {
  RunResult run;
  bool cache_hit = false;
  bool coalesced = false;
  double server_ms = 0;  ///< Submit → resolve latency inside the service.
  NamedPatternList patterns;
};

std::string EncodeMineResponse(const MineResponse& response);
MineResponse DecodeMineResponse(std::string_view payload);

/// A typed failure. The code survives the wire, so a client distinguishes
/// deadline_exceeded from queue_full without string matching — the same
/// contract ServeError gives in-process callers.
struct ErrorResponse {
  serve::ServeErrorCode code = serve::ServeErrorCode::kExecutionFailed;
  std::string message;
};

std::string EncodeErrorResponse(serve::ServeErrorCode code,
                                std::string_view message);
ErrorResponse DecodeErrorResponse(std::string_view payload);

/// Payload of one kStatsRequest (no body).
std::string EncodeStatsRequest();

/// Payload of one kStatsResponse: every ServiceStats field. The layout is
/// frozen at its v1 bytes — the full metrics snapshot travels over the
/// separate kMetricsRequest/kMetricsResponse RPC instead of extending this
/// body (which would demand a version bump).
std::string EncodeStatsResponse(const serve::ServiceStats& stats);
serve::ServiceStats DecodeStatsResponse(std::string_view payload);

/// Payload of one kMetricsRequest (no body).
std::string EncodeMetricsRequest();

/// Payload of one kMetricsResponse: a MetricsRegistry snapshot as a flat
/// sample list — `varint count`, then per sample `varint name length | name
/// bytes | 8-byte LE double bits`. Samples keep the registry's sorted-by-
/// name order.
std::string EncodeMetricsResponse(const std::vector<obs::MetricSample>& samples);
std::vector<obs::MetricSample> DecodeMetricsResponse(std::string_view payload);

/// One support-counting request (phase 2 of the router's two-phase
/// protocol): count the exact (γ, λ)-support of each named candidate on
/// one shard. The match parameters travel explicitly — counting is not
/// mining, so there is no cache key to reuse — and the candidates ride the
/// canonical EncodeNamedPatterns layout with frequency 0.
struct CountRequest {
  /// Trace context (always present on the wire; 24 zero bytes = inactive).
  obs::TraceContext trace{};
  /// Which Dataset shard of the worker answers (0 for single-shard workers).
  size_t shard = 0;
  /// Milliseconds from receipt (0 = none); checked between candidates.
  double deadline_ms = 0;
  /// Count in the flat rank space (the canonicalized `flat || MgFsm` bit
  /// of the mine spec, i.e. RunResult::used_flat_hierarchy).
  bool flat = false;
  uint32_t gamma = 0;
  uint32_t lambda = 0;
  /// Candidate patterns by item names; frequencies are ignored.
  NamedPatternList candidates;
};

/// One shard's exact answer: `supports[i]` is the support of
/// `request.candidates[i]` (index-aligned; unknown item names count 0).
struct CountResponse {
  double server_ms = 0;  ///< Receipt → reply inside the worker.
  std::vector<Frequency> supports;
};

std::string EncodeCountRequest(const CountRequest& request);
CountRequest DecodeCountRequest(std::string_view payload);

std::string EncodeCountResponse(const CountResponse& response);
CountResponse DecodeCountResponse(std::string_view payload);

}  // namespace lash::net

#endif  // LASH_NET_WIRE_H_
