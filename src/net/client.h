#ifndef LASH_NET_CLIENT_H_
#define LASH_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/socket.h"
#include "net/wire.h"
#include "serve/mining_service.h"
#include "serve/task_spec.h"

namespace lash::net {

struct ClientOptions {
  /// Per-attempt TCP connect timeout.
  int connect_timeout_ms = 2000;
  /// Timeout for one full request/response exchange (0 = none). On expiry
  /// the connection is dropped (the reply cannot be resynchronized) and
  /// the call throws kDeadlineExceeded.
  int io_timeout_ms = 0;
  /// Extra connection attempts after the first fails (bounded retry).
  int connect_retries = 3;
  /// Backoff before retry k is `retry_backoff_ms << k` (exponential).
  int retry_backoff_ms = 50;
};

/// A successful remote mining answer.
struct MineReply {
  RunResult run;
  NamedPatternList patterns;  ///< Canonical wire order.
  bool cache_hit = false;
  bool coalesced = false;
  double server_ms = 0;      ///< Submit → resolve inside the remote service.
  double round_trip_ms = 0;  ///< Full client-observed wall clock.
};

/// A successful remote support-counting answer (phase 2 of the router's
/// two-phase protocol).
struct CountReply {
  std::vector<Frequency> supports;  ///< Index-aligned with the candidates.
  double server_ms = 0;             ///< Receipt → reply inside the worker.
  double round_trip_ms = 0;         ///< Full client-observed wall clock.
};

/// A thin blocking client for the framed wire protocol: one TCP connection,
/// lazily (re)established with bounded exponential-backoff retries, one
/// outstanding request at a time. Every failure a caller can observe is the
/// same typed serve::ServeError the in-process service throws:
///
///   * remote typed failures arrive as their original code (queue_full,
///     invalid_task, ...);
///   * a request/response timeout throws kDeadlineExceeded;
///   * connection refused/lost after retries, or a malformed response,
///     throws kExecutionFailed.
///
/// Not thread-safe; give each thread its own client (connections are
/// cheap, and the router does exactly that).
class NetClient {
 public:
  NetClient(std::string host, uint16_t port, ClientOptions options = {});
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Mines `spec` remotely and returns the decoded reply. The spec's
  /// deadline travels with the request (the server enforces it too). A spec
  /// with a shard-σ override (`spec.shard_sigma != 0`) is sent as
  /// kMineRequestV3; otherwise a spec carrying an active trace id is sent
  /// as kMineRequestV2 (the trace context crosses the wire); otherwise the
  /// v1 encoding is used, byte-identical to a pre-PR-9 client.
  MineReply Mine(const serve::TaskSpec& spec);

  /// Counts the exact supports of `request.candidates` on the remote shard
  /// (the kCountRequest RPC). Same typed-failure contract as Mine.
  CountReply Count(const CountRequest& request);

  /// Fetches the remote service's counters.
  serve::ServiceStats Stats();

  /// Fetches the remote process's full metrics snapshot (the
  /// kMetricsRequest RPC), sorted by metric name.
  std::vector<obs::MetricSample> Metrics();

  /// Drops the connection; the next call reconnects.
  void Disconnect();

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  /// Ensures a live connection (connect + retries) and performs one framed
  /// request/response exchange. Throws ServeError.
  std::string Exchange(const std::string& payload);

  void EnsureConnected();
  void SendAll(const std::string& bytes);
  std::string ReadFrame();
  /// Polls `fd_` for `events` within the call's remaining budget; throws
  /// kDeadlineExceeded on expiry.
  void WaitIo(short events);

  std::string host_;
  uint16_t port_;
  ClientOptions options_;
  UniqueFd fd_;
  std::string rbuf_;
  /// Absolute deadline of the in-progress exchange (0 = none), in
  /// steady-clock milliseconds.
  double io_deadline_ms_ = 0;
};

/// "host:port" of one worker, e.g. "127.0.0.1:7421".
struct WorkerAddress {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port"; throws serve::ServeError(kInvalidTask) on garbage.
WorkerAddress ParseWorkerAddress(const std::string& address);

}  // namespace lash::net

#endif  // LASH_NET_CLIENT_H_
