#include "net/server.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "io/io_error.h"
#include "net/socket.h"
#include "net/wire.h"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace lash::net {

/// Identity of one pending reply: which connection (by loop-assigned id, so
/// fd reuse can never alias), which request serial on it.
struct Reply::Target {
  std::weak_ptr<NetServer::Core> core;
  uint64_t conn_id = 0;
  uint64_t serial = 0;
  std::atomic<bool> sent{false};
};

struct NetServer::Core {
  ServerOptions options;
  Backend* backend = nullptr;
  ListenSocket listener;
  UniqueFd epoll;
  UniqueFd wake;
  std::atomic<bool> stop{false};

  struct Conn {
    UniqueFd fd;
    std::string rbuf;
    std::string wbuf;
    /// Serial stamped on the next incoming frame (loop thread only).
    uint64_t next_serial = 0;
    /// Serial whose reply is flushed next — replies complete out of order
    /// but leave in request order.
    uint64_t next_flush = 0;
    /// Dispatched frames whose Reply has not fired yet (guarded by mu).
    uint64_t inflight = 0;
    /// Completed replies waiting for their serial's turn (guarded by mu).
    std::map<uint64_t, std::string> ready;
    bool want_write = false;
  };

  /// Guards `conns` membership and every Conn's ready/inflight. The loop
  /// never holds it across a Backend::Handle call or a syscall.
  std::mutex mu;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  uint64_t next_conn_id = 2;  // 0 = listener, 1 = wake eventfd.

  /// net.server.* instruments; all null when ServerOptions::metrics was.
  /// Updated only on the event-loop thread.
  struct Instruments {
    obs::Gauge* connections = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* conn_errors = nullptr;
  } inst;

  void WakeLoop() {
#ifdef __linux__
    if (wake.valid()) {
      const uint64_t one = 1;
      // write() is async-signal-safe — Shutdown() may run in a handler.
      [[maybe_unused]] ssize_t n = ::write(wake.get(), &one, sizeof(one));
    }
#endif
  }
};

void Reply::Send(std::string payload) const {
  if (!target_) return;
  if (target_->sent.exchange(true)) return;
  std::shared_ptr<NetServer::Core> core = target_->core.lock();
  if (!core) return;
  {
    std::lock_guard<std::mutex> lock(core->mu);
    auto it = core->conns.find(target_->conn_id);
    if (it != core->conns.end()) {
      it->second->ready.emplace(target_->serial, std::move(payload));
      --it->second->inflight;
    }
  }
  core->WakeLoop();
}

#ifdef __linux__

namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

void EpollAdd(int epoll_fd, int fd, uint64_t tag, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw SocketError(std::string("epoll_ctl add: ") + std::strerror(errno));
  }
}

void EpollMod(int epoll_fd, int fd, uint64_t tag, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

void EpollDel(int epoll_fd, int fd) {
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
}

/// The event loop, operating on a shared Core. Free-standing so Reply
/// construction can capture the shared_ptr.
class Loop {
 public:
  explicit Loop(std::shared_ptr<NetServer::Core> core)
      : core_(std::move(core)) {}

  void Run() {
    bool listener_open = true;
    while (true) {
      const bool draining = core_->stop.load(std::memory_order_acquire);
      if (draining) {
        if (listener_open) {
          EpollDel(core_->epoll.get(), core_->listener.fd.get());
          core_->listener.fd.Reset();
          listener_open = false;
        }
        CloseIdleConns();
        if (Drained()) return;
      }

      epoll_event events[64];
      const int n =
          ::epoll_wait(core_->epoll.get(), events, 64, draining ? 20 : 200);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw SocketError(std::string("epoll_wait: ") + std::strerror(errno));
      }
      for (int i = 0; i < n; ++i) {
        const uint64_t tag = events[i].data.u64;
        if (tag == kListenerTag) {
          Accept();
        } else if (tag == kWakeTag) {
          uint64_t drain_count = 0;
          [[maybe_unused]] ssize_t r = ::read(core_->wake.get(), &drain_count,
                                              sizeof(drain_count));
        } else {
          HandleConnEvent(tag, events[i].events);
        }
      }
      FlushReady();
    }
  }

 private:
  NetServer::Core::Conn* FindConn(uint64_t id) {
    std::lock_guard<std::mutex> lock(core_->mu);
    auto it = core_->conns.find(id);
    return it == core_->conns.end() ? nullptr : it->second.get();
  }

  void Accept() {
    while (true) {
      const int fd = ::accept(core_->listener.fd.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // Transient accept failure; the listener stays armed.
      }
      UniqueFd conn_fd(fd);
      if (core_->stop.load(std::memory_order_acquire)) continue;  // Drain.
      try {
        SetNonBlocking(fd);
      } catch (const SocketError&) {
        continue;
      }
      SetNoDelay(fd);
      auto conn = std::make_unique<NetServer::Core::Conn>();
      conn->fd = std::move(conn_fd);
      const uint64_t id = core_->next_conn_id++;
      EpollAdd(core_->epoll.get(), conn->fd.get(), id, EPOLLIN);
      if (core_->inst.accepted != nullptr) {
        core_->inst.accepted->Add();
        core_->inst.connections->Add(1);
      }
      std::lock_guard<std::mutex> lock(core_->mu);
      core_->conns.emplace(id, std::move(conn));
    }
  }

  void CloseConn(uint64_t id) {
    std::unique_ptr<NetServer::Core::Conn> conn;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      auto it = core_->conns.find(id);
      if (it == core_->conns.end()) return;
      conn = std::move(it->second);
      core_->conns.erase(it);
    }
    if (core_->inst.connections != nullptr) core_->inst.connections->Sub(1);
    EpollDel(core_->epoll.get(), conn->fd.get());
    // conn (and its fd) destroyed here; any late Reply::Send for this
    // connection finds no entry and becomes a no-op.
  }

  void HandleConnEvent(uint64_t id, uint32_t events) {
    NetServer::Core::Conn* conn = FindConn(id);
    if (conn == nullptr) return;  // Closed earlier in this batch.
    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseConn(id);
      return;
    }
    if (events & EPOLLOUT) {
      if (!TrySend(id, conn)) return;
    }
    if (events & EPOLLIN) Readable(id, conn);
  }

  void Readable(uint64_t id, NetServer::Core::Conn* conn) {
    char buf[65536];
    while (true) {
      const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->rbuf.append(buf, static_cast<size_t>(n));
        if (core_->inst.bytes_in != nullptr) {
          core_->inst.bytes_in->Add(static_cast<uint64_t>(n));
        }
        continue;
      }
      if (n == 0) {  // Peer closed; outstanding replies have nowhere to go.
        CloseConn(id);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (core_->inst.conn_errors != nullptr) core_->inst.conn_errors->Add();
      CloseConn(id);
      return;
    }
    // During a drain, buffered bytes stay buffered: no new work starts.
    if (core_->stop.load(std::memory_order_acquire)) return;
    try {
      std::string payload;
      while (TryExtractFrame(&conn->rbuf, &payload) == FrameStatus::kFrame) {
        if (payload.size() > core_->options.max_frame_bytes) {
          throw IoError(IoErrorKind::kMalformed, 0,
                        "frame exceeds the server's max_frame_bytes");
        }
        if (core_->inst.frames_in != nullptr) core_->inst.frames_in->Add();
        auto target = std::make_shared<Reply::Target>();
        target->core = core_;
        target->conn_id = id;
        target->serial = conn->next_serial++;
        Reply reply(std::move(target));
        {
          std::lock_guard<std::mutex> lock(core_->mu);
          ++conn->inflight;
        }
        core_->backend->Handle(payload, reply);
      }
    } catch (...) {
      // A frame this server cannot parse (or a backend that rejected it
      // structurally): the only safe protocol state is a closed
      // connection. Every other connection keeps being served.
      if (core_->inst.protocol_errors != nullptr) {
        core_->inst.protocol_errors->Add();
      }
      CloseConn(id);
    }
  }

  /// Flushes as much of wbuf as the socket accepts. Returns false if the
  /// connection was closed.
  bool TrySend(uint64_t id, NetServer::Core::Conn* conn) {
    size_t sent = 0;
    while (sent < conn->wbuf.size()) {
      const ssize_t n =
          ::send(conn->fd.get(), conn->wbuf.data() + sent,
                 conn->wbuf.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (core_->inst.conn_errors != nullptr) core_->inst.conn_errors->Add();
      CloseConn(id);
      return false;
    }
    if (core_->inst.bytes_out != nullptr && sent > 0) {
      core_->inst.bytes_out->Add(sent);
    }
    conn->wbuf.erase(0, sent);
    const bool want_write = !conn->wbuf.empty();
    if (want_write != conn->want_write) {
      conn->want_write = want_write;
      EpollMod(core_->epoll.get(), conn->fd.get(), id,
               want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
    }
    return true;
  }

  /// Moves completed replies (in per-connection serial order) into write
  /// buffers and pushes them to the sockets.
  void FlushReady() {
    std::vector<uint64_t> to_flush;
    std::vector<uint64_t> to_close;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      for (auto& [id, conn] : core_->conns) {
        bool moved = false;
        auto it = conn->ready.begin();
        while (it != conn->ready.end() && it->first == conn->next_flush) {
          if (it->second.size() > kMaxFramePayloadBytes) {
            // A reply this protocol cannot frame; the connection cannot
            // stay in sync past a hole in the serial sequence.
            to_close.push_back(id);
            break;
          }
          AppendFrame(&conn->wbuf, it->second);
          if (core_->inst.frames_out != nullptr) {
            core_->inst.frames_out->Add();
          }
          it = conn->ready.erase(it);
          ++conn->next_flush;
          moved = true;
        }
        if (moved) to_flush.push_back(id);
      }
    }
    for (uint64_t id : to_close) CloseConn(id);
    for (uint64_t id : to_flush) {
      NetServer::Core::Conn* conn = FindConn(id);
      if (conn != nullptr) TrySend(id, conn);
    }
  }

  void CloseIdleConns() {
    FlushReady();
    std::vector<uint64_t> idle;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      for (auto& [id, conn] : core_->conns) {
        if (conn->inflight == 0 && conn->ready.empty() && conn->wbuf.empty()) {
          idle.push_back(id);
        }
      }
    }
    for (uint64_t id : idle) CloseConn(id);
  }

  bool Drained() {
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      if (!core_->conns.empty()) return false;
    }
    return core_->backend->InFlight() == 0;
  }

  std::shared_ptr<NetServer::Core> core_;
};

}  // namespace

NetServer::NetServer(ServerOptions options, Backend* backend)
    : core_(std::make_shared<Core>()) {
  core_->options = std::move(options);
  core_->backend = backend;
  core_->listener = ListenTcp(core_->options.bind_address,
                              core_->options.port);
  core_->epoll = UniqueFd(::epoll_create1(0));
  if (!core_->epoll.valid()) {
    throw SocketError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  core_->wake = UniqueFd(::eventfd(0, EFD_NONBLOCK));
  if (!core_->wake.valid()) {
    throw SocketError(std::string("eventfd: ") + std::strerror(errno));
  }
  EpollAdd(core_->epoll.get(), core_->listener.fd.get(), kListenerTag,
           EPOLLIN);
  EpollAdd(core_->epoll.get(), core_->wake.get(), kWakeTag, EPOLLIN);
  if (core_->options.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *core_->options.metrics;
    core_->inst.connections = metrics.GetGauge("net.server.connections");
    core_->inst.accepted = metrics.GetCounter("net.server.accepted");
    core_->inst.frames_in = metrics.GetCounter("net.server.frames_in");
    core_->inst.frames_out = metrics.GetCounter("net.server.frames_out");
    core_->inst.bytes_in = metrics.GetCounter("net.server.bytes_in");
    core_->inst.bytes_out = metrics.GetCounter("net.server.bytes_out");
    core_->inst.protocol_errors =
        metrics.GetCounter("net.server.protocol_errors");
    core_->inst.conn_errors = metrics.GetCounter("net.server.conn_errors");
  }
}

NetServer::~NetServer() = default;

uint16_t NetServer::port() const { return core_->listener.bound_port; }

void NetServer::Run() { Loop(core_).Run(); }

void NetServer::Shutdown() {
  core_->stop.store(true, std::memory_order_release);
  core_->WakeLoop();
}

#else  // !__linux__

NetServer::NetServer(ServerOptions, Backend*) {
  throw SocketError("NetServer requires Linux (epoll)");
}

NetServer::~NetServer() = default;

uint16_t NetServer::port() const { return 0; }

void NetServer::Run() {}

void NetServer::Shutdown() {}

#endif  // __linux__

}  // namespace lash::net
