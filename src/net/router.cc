#include "net/router.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "io/io_error.h"
#include "io/result_io.h"

namespace lash::net {

using serve::ServeError;
using serve::ServeErrorCode;

RouterBackend::RouterBackend(std::vector<WorkerAddress> workers,
                             RouterOptions options)
    : options_(std::move(options)) {
  for (WorkerAddress& address : workers) {
    auto slot = std::make_unique<WorkerSlot>();
    slot->address = std::move(address);
    workers_.push_back(std::move(slot));
  }
  const size_t threads = options_.scatter_threads > 0
                             ? options_.scatter_threads
                             : std::max<size_t>(1, workers_.size());
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.metrics != nullptr) {
    scatter_requests_ = options_.metrics->GetCounter("router.scatter.requests");
    scatter_worker_errors_ =
        options_.metrics->GetCounter("router.scatter.worker_errors");
  }
}

RouterBackend::~RouterBackend() { pool_->Wait(); }

void RouterBackend::Handle(std::string_view payload, Reply reply) {
  const MessageType type = PeekMessageType(payload);
  if (type == MessageType::kStatsRequest) {
    // Stats fan out to every worker — too slow for the event loop.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++inflight_;
    }
    pool_->Submit([this, reply] {
      std::string answer;
      try {
        answer = EncodeStatsResponse(AggregateStats());
      } catch (const ServeError& e) {
        answer = EncodeErrorResponse(e.code(), e.what());
      }
      reply.Send(std::move(answer));
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    });
    return;
  }
  if (type == MessageType::kMetricsRequest) {
    reply.Send(EncodeMetricsResponse(options_.metrics != nullptr
                                         ? options_.metrics->Snapshot()
                                         : std::vector<obs::MetricSample>{}));
    return;
  }
  if (type != MessageType::kMineRequest &&
      type != MessageType::kMineRequestV2) {
    throw IoError(IoErrorKind::kMalformed, 0,
                  "router received a non-request message");
  }
  const MineRequest request = DecodeMineRequest(payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_;
  }
  pool_->Submit([this, spec = request.spec, reply] {
    std::string answer;
    try {
      answer = EncodeMineResponse(Scatter(spec));
    } catch (const ServeError& e) {
      answer = EncodeErrorResponse(e.code(), e.what());
    } catch (const std::exception& e) {
      answer = EncodeErrorResponse(ServeErrorCode::kExecutionFailed,
                                   e.what());
    }
    reply.Send(std::move(answer));
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  });
}

size_t RouterBackend::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

MineResponse RouterBackend::Scatter(const serve::TaskSpec& spec) {
  if (workers_.empty()) {
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     "router has no workers");
  }
  if (spec.shard != 0) {
    throw ServeError(ServeErrorCode::kInvalidTask,
                     "the router serves one logical shard; "
                     "shard routing happens behind it");
  }
  if (spec.filter != PatternFilter::kNone) {
    throw ServeError(
        ServeErrorCode::kInvalidTask,
        "closed/maximal filters do not distribute over the cross-shard "
        "merge; filter on the client or mine a single worker");
  }

  if (scatter_requests_ != nullptr) scatter_requests_->Add();
  // The router's subtree of the request trace: router.scatter spans the
  // whole fan-out+merge, one router.leg per worker (its span id becomes the
  // worker-side parent), router.merge the reduction.
  obs::Span scatter_span(&obs::Tracer::Global(), spec.trace, "router.scatter");
  scatter_span.Tag("workers", static_cast<double>(workers_.size()));

  // Scatter at shard_sigma (σ' = 1 by default: a union-frequent pattern can
  // be below σ on every shard) and un-truncated (top-k re-cut after the
  // merge). The worker's answer stays cacheable under its own canonical key.
  serve::TaskSpec shard_spec = spec;
  shard_spec.params.sigma = std::min<Frequency>(options_.shard_sigma,
                                                spec.params.sigma);
  shard_spec.top_k = 0;

  std::vector<MineReply> replies(workers_.size());
  std::vector<std::string> errors(workers_.size());
  std::vector<ServeErrorCode> codes(workers_.size(),
                                    ServeErrorCode::kExecutionFailed);
  // ParallelFor participates from the calling thread, so scatter works even
  // when every pool worker is busy with other router requests. Exceptions
  // must not escape the body (pool contract: they would kill the process).
  pool_->ParallelFor(workers_.size(), [&](size_t w) {
    WorkerSlot& slot = *workers_[w];
    std::lock_guard<std::mutex> lock(slot.mu);
    try {
      if (!slot.client) {
        slot.client = std::make_unique<NetClient>(
            slot.address.host, slot.address.port, options_.client);
      }
      obs::Span leg_span(&obs::Tracer::Global(), scatter_span.context(),
                         "router.leg");
      leg_span.Tag("worker", slot.address.host + ":" +
                                 std::to_string(slot.address.port));
      serve::TaskSpec leg_spec = shard_spec;
      // The leg span parents the worker's serve.request; when this process
      // records nowhere the incoming context is forwarded untouched, so a
      // tracing worker behind a non-tracing router still joins the trace.
      leg_spec.trace =
          leg_span.active() ? leg_span.context() : shard_spec.trace;
      replies[w] = slot.client->Mine(leg_spec);
      errors[w].clear();
    } catch (const ServeError& e) {
      codes[w] = e.code();
      errors[w] = e.what();
    } catch (const std::exception& e) {
      errors[w] = e.what();
    }
  });
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (!errors[w].empty()) {
      if (scatter_worker_errors_ != nullptr) scatter_worker_errors_->Add();
      // One shard missing means the sum is wrong for every pattern it
      // held; a partial answer would be silently incorrect.
      scatter_span.Tag("outcome", "worker_error");
      throw ServeError(codes[w], "worker " + workers_[w]->address.host + ":" +
                                     std::to_string(workers_[w]->address.port) +
                                     ": " + errors[w]);
    }
  }
  obs::Span merge_span(&obs::Tracer::Global(), scatter_span.context(),
                       "router.merge");

  // Associative cross-shard reduction: sum supports keyed on the canonical
  // item-name bytes (the same encoded-key-bytes identity the shuffle's
  // ByteCombiner merges on), then re-apply the caller's σ and top-k.
  struct Merged {
    std::vector<std::string> items;
    Frequency frequency = 0;
  };
  std::unordered_map<std::string, Merged> merged;
  for (MineReply& reply : replies) {
    for (NamedPattern& pattern : reply.patterns) {
      Merged& slot = merged[NamedPatternKey(pattern)];
      if (slot.items.empty()) slot.items = std::move(pattern.items);
      slot.frequency += pattern.frequency;
    }
  }

  MineResponse response;
  response.patterns.reserve(merged.size());
  for (auto& [key, entry] : merged) {
    if (entry.frequency < spec.params.sigma) continue;
    response.patterns.push_back(
        NamedPattern{std::move(entry.items), entry.frequency});
  }
  SortNamedPatterns(&response.patterns);
  if (spec.top_k > 0 && response.patterns.size() > spec.top_k) {
    response.patterns.resize(spec.top_k);
  }

  // The merged RunResult: accounting sums across workers, wall-clock fields
  // take the max (the scatter ran them concurrently), aborted ORs.
  bool first = true;
  RunResult& run = response.run;
  double server_ms = 0;
  for (const MineReply& reply : replies) {
    server_ms = std::max(server_ms, reply.server_ms);
    response.cache_hit = response.cache_hit || reply.cache_hit;
    response.coalesced = response.coalesced || reply.coalesced;
    if (first) {
      run = reply.run;
      first = false;
      continue;
    }
    run.aborted = run.aborted || reply.run.aborted;
    run.miner_stats.Merge(reply.run.miner_stats);
    run.gsp_stats.extended_items += reply.run.gsp_stats.extended_items;
    run.gsp_stats.candidates += reply.run.gsp_stats.candidates;
    run.gsp_stats.database_scans =
        std::max(run.gsp_stats.database_scans,
                 reply.run.gsp_stats.database_scans);
    run.partition_shape.Merge(reply.run.partition_shape);
    run.job.times.map_ms = std::max(run.job.times.map_ms,
                                    reply.run.job.times.map_ms);
    run.job.times.shuffle_ms = std::max(run.job.times.shuffle_ms,
                                        reply.run.job.times.shuffle_ms);
    run.job.times.reduce_ms = std::max(run.job.times.reduce_ms,
                                       reply.run.job.times.reduce_ms);
    run.job.counters.Merge(reply.run.job.counters);
    run.mine_ms = std::max(run.mine_ms, reply.run.mine_ms);
    run.filter_ms = std::max(run.filter_ms, reply.run.filter_ms);
    run.total_ms = std::max(run.total_ms, reply.run.total_ms);
    run.patterns_mined += reply.run.patterns_mined;
  }
  // Pattern accounting of the *merged* answer, not the scatter's σ'=1
  // over-mining: what this response actually contains.
  run.patterns_emitted = response.patterns.size();
  response.server_ms = server_ms;
  merge_span.Tag("patterns", static_cast<double>(response.patterns.size()));
  merge_span.End();
  scatter_span.Tag("outcome", "ok");
  scatter_span.End();
  return response;
}

serve::ServiceStats RouterBackend::AggregateStats() {
  serve::ServiceStats total;
  bool first = true;
  for (auto& slot : workers_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (!slot->client) {
      slot->client = std::make_unique<NetClient>(
          slot->address.host, slot->address.port, options_.client);
    }
    const serve::ServiceStats stats = slot->client->Stats();
    total.submitted += stats.submitted;
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.coalesced += stats.coalesced;
    total.invalid += stats.invalid;
    total.completed += stats.completed;
    total.rejected += stats.rejected;
    total.cancelled += stats.cancelled;
    total.deadline_expired += stats.deadline_expired;
    total.failed += stats.failed;
    total.executions += stats.executions;
    total.cache_entries += stats.cache_entries;
    total.cache_bytes += stats.cache_bytes;
    total.cache_evictions += stats.cache_evictions;
    total.cache_oversized_rejects += stats.cache_oversized_rejects;
    total.queue_depth += stats.queue_depth;
    if (first) {
      total.hit_p50_ms = stats.hit_p50_ms;
      total.hit_p95_ms = stats.hit_p95_ms;
      total.hit_mean_ms = stats.hit_mean_ms;
      total.mine_p50_ms = stats.mine_p50_ms;
      total.mine_p95_ms = stats.mine_p95_ms;
      total.mine_mean_ms = stats.mine_mean_ms;
      first = false;
    } else {
      total.hit_p50_ms = std::max(total.hit_p50_ms, stats.hit_p50_ms);
      total.hit_p95_ms = std::max(total.hit_p95_ms, stats.hit_p95_ms);
      total.hit_mean_ms = std::max(total.hit_mean_ms, stats.hit_mean_ms);
      total.mine_p50_ms = std::max(total.mine_p50_ms, stats.mine_p50_ms);
      total.mine_p95_ms = std::max(total.mine_p95_ms, stats.mine_p95_ms);
      total.mine_mean_ms = std::max(total.mine_mean_ms, stats.mine_mean_ms);
    }
  }
  return total;
}

}  // namespace lash::net
