#include "net/router.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>

#include "io/io_error.h"
#include "io/result_io.h"
#include "util/timer.h"

namespace lash::net {

using serve::ServeError;
using serve::ServeErrorCode;

RouterBackend::RouterBackend(std::vector<WorkerAddress> workers,
                             RouterOptions options)
    : options_(std::move(options)) {
  for (WorkerAddress& address : workers) {
    auto slot = std::make_unique<WorkerSlot>();
    slot->address = std::move(address);
    workers_.push_back(std::move(slot));
  }
  const size_t threads = options_.scatter_threads > 0
                             ? options_.scatter_threads
                             : std::max<size_t>(1, workers_.size());
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.metrics != nullptr) {
    scatter_requests_ = options_.metrics->GetCounter("router.scatter.requests");
    scatter_worker_errors_ =
        options_.metrics->GetCounter("router.scatter.worker_errors");
    count_requests_ = options_.metrics->GetCounter("router.count.requests");
    count_candidates_ = options_.metrics->GetCounter("router.count.candidates");
    count_patterns_shipped_ =
        options_.metrics->GetCounter("router.count.patterns_shipped");
    count_phase_ms_ = options_.metrics->GetHistogram("router.count.phase_ms");
  }
}

RouterBackend::~RouterBackend() { pool_->Wait(); }

void RouterBackend::Handle(std::string_view payload, Reply reply) {
  const MessageType type = PeekMessageType(payload);
  if (type == MessageType::kStatsRequest) {
    // Stats fan out to every worker — too slow for the event loop.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++inflight_;
    }
    pool_->Submit([this, reply] {
      std::string answer;
      try {
        answer = EncodeStatsResponse(AggregateStats());
      } catch (const ServeError& e) {
        answer = EncodeErrorResponse(e.code(), e.what());
      }
      reply.Send(std::move(answer));
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    });
    return;
  }
  if (type == MessageType::kMetricsRequest) {
    reply.Send(EncodeMetricsResponse(options_.metrics != nullptr
                                         ? options_.metrics->Snapshot()
                                         : std::vector<obs::MetricSample>{}));
    return;
  }
  if (type != MessageType::kMineRequest &&
      type != MessageType::kMineRequestV2 &&
      type != MessageType::kMineRequestV3) {
    throw IoError(IoErrorKind::kMalformed, 0,
                  "router received a non-request message");
  }
  const MineRequest request = DecodeMineRequest(payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_;
  }
  pool_->Submit([this, spec = request.spec, reply] {
    std::string answer;
    try {
      answer = EncodeMineResponse(Scatter(spec));
    } catch (const ServeError& e) {
      answer = EncodeErrorResponse(e.code(), e.what());
    } catch (const std::exception& e) {
      answer = EncodeErrorResponse(ServeErrorCode::kExecutionFailed,
                                   e.what());
    }
    reply.Send(std::move(answer));
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  });
}

size_t RouterBackend::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

Frequency RouterBackend::ResolveShardSigma(const serve::TaskSpec& spec) const {
  const Frequency sigma = spec.params.sigma;
  Frequency sigma_prime;
  if (spec.shard_sigma != 0) {
    sigma_prime = spec.shard_sigma;  // per-request override wins
  } else if (options_.shard_sigma != 0) {
    sigma_prime = options_.shard_sigma;
  } else if (options_.two_phase) {
    // The pigeonhole bound: supp(S) ≥ σ summed over k transaction
    // partitions forces supp(S) ≥ ⌈σ/k⌉ on at least one of them.
    const Frequency k = workers_.size();
    sigma_prime = (sigma + k - 1) / k;
  } else {
    sigma_prime = 1;  // legacy exactness: every pattern visible everywhere
  }
  return std::min(std::max<Frequency>(sigma_prime, 1), sigma);
}

MineResponse RouterBackend::Scatter(const serve::TaskSpec& spec) {
  if (workers_.empty()) {
    throw ServeError(ServeErrorCode::kExecutionFailed,
                     "router has no workers");
  }
  if (spec.shard != 0) {
    throw ServeError(ServeErrorCode::kInvalidTask,
                     "the router serves one logical shard; "
                     "shard routing happens behind it");
  }
  if (spec.filter != PatternFilter::kNone) {
    throw ServeError(
        ServeErrorCode::kInvalidTask,
        "closed/maximal filters do not distribute over the cross-shard "
        "merge; filter on the client or mine a single worker");
  }

  if (scatter_requests_ != nullptr) scatter_requests_->Add();
  const Stopwatch total_watch;
  const Frequency sigma_prime = ResolveShardSigma(spec);
  // The router's subtree of the request trace: router.scatter spans the
  // whole fan-out+merge, one router.leg per phase-1 worker (its span id
  // becomes the worker-side parent), one router.count per phase-2 leg,
  // router.merge the reduction.
  obs::Span scatter_span(&obs::Tracer::Global(), spec.trace, "router.scatter");
  scatter_span.Tag("workers", static_cast<double>(workers_.size()));
  scatter_span.Tag("shard_sigma", static_cast<double>(sigma_prime));

  // One stderr line when a slow scatter resolves, mirroring the service's
  // slow-query log; `candidates`/`count_ms` stay 0/"-" until the count
  // phase has run.
  const auto maybe_log_slow = [&](const char* outcome, size_t candidates,
                                  double count_ms) {
    if (options_.slow_query_ms <= 0) return;
    const double latency_ms = total_watch.ElapsedMs();
    if (latency_ms < options_.slow_query_ms) return;
    std::fprintf(stderr,
                 "[lash.slow] outcome=%s latency_ms=%.3f threshold_ms=%.3f "
                 "twophase=%d shard_sigma=%llu candidates=%zu count_ms=%.3f "
                 "trace=%s\n",
                 outcome, latency_ms, options_.slow_query_ms,
                 options_.two_phase ? 1 : 0,
                 static_cast<unsigned long long>(sigma_prime), candidates,
                 count_ms,
                 spec.trace.active() ? spec.trace.trace_id.Hex().c_str()
                                     : "-");
  };

  // Phase 1: scatter the mine at σ′ and un-truncated (top-k re-cut after
  // the merge). The per-request shard_sigma override is consumed here — it
  // is router-level routing state, so the worker legs stay v1/v2 traffic
  // and the worker's answer stays cacheable under its own canonical key.
  serve::TaskSpec shard_spec = spec;
  shard_spec.params.sigma = sigma_prime;
  shard_spec.top_k = 0;
  shard_spec.shard_sigma = 0;

  std::vector<MineReply> replies(workers_.size());
  std::vector<std::string> errors(workers_.size());
  std::vector<ServeErrorCode> codes(workers_.size(),
                                    ServeErrorCode::kExecutionFailed);
  // ParallelFor participates from the calling thread, so scatter works even
  // when every pool worker is busy with other router requests. Exceptions
  // must not escape the body (pool contract: they would kill the process).
  pool_->ParallelFor(workers_.size(), [&](size_t w) {
    WorkerSlot& slot = *workers_[w];
    std::lock_guard<std::mutex> lock(slot.mu);
    try {
      if (!slot.client) {
        slot.client = std::make_unique<NetClient>(
            slot.address.host, slot.address.port, options_.client);
      }
      obs::Span leg_span(&obs::Tracer::Global(), scatter_span.context(),
                         "router.leg");
      leg_span.Tag("worker", slot.address.host + ":" +
                                 std::to_string(slot.address.port));
      serve::TaskSpec leg_spec = shard_spec;
      // The leg span parents the worker's serve.request; when this process
      // records nowhere the incoming context is forwarded untouched, so a
      // tracing worker behind a non-tracing router still joins the trace.
      leg_spec.trace =
          leg_span.active() ? leg_span.context() : shard_spec.trace;
      replies[w] = slot.client->Mine(leg_spec);
      errors[w].clear();
    } catch (const ServeError& e) {
      codes[w] = e.code();
      errors[w] = e.what();
    } catch (const std::exception& e) {
      errors[w] = e.what();
    }
  });
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (!errors[w].empty()) {
      if (scatter_worker_errors_ != nullptr) scatter_worker_errors_->Add();
      // One shard missing means the sum is wrong for every pattern it
      // held; a partial answer would be silently incorrect.
      scatter_span.Tag("outcome", "worker_error");
      maybe_log_slow("worker_error", 0, 0);
      throw ServeError(codes[w], "worker " + workers_[w]->address.host + ":" +
                                     std::to_string(workers_[w]->address.port) +
                                     ": " + errors[w]);
    }
  }

  // Union of the phase-1 answers keyed on the canonical item-name bytes
  // (the same encoded-key-bytes identity the shuffle's ByteCombiner merges
  // on). On the legacy σ′=1 path the summed frequencies are already exact;
  // on the two-phase path they are partial sums (a shard below σ′ did not
  // report) and the count phase below replaces them.
  struct Merged {
    std::vector<std::string> items;
    Frequency frequency = 0;
  };
  std::unordered_map<std::string, Merged> merged;
  for (MineReply& reply : replies) {
    for (NamedPattern& pattern : reply.patterns) {
      Merged& slot = merged[NamedPatternKey(pattern)];
      if (slot.items.empty()) slot.items = std::move(pattern.items);
      slot.frequency += pattern.frequency;
    }
  }

  // Phase 2: recount the union candidates exactly on every shard and sum.
  // Skipped when phase 1 is already exact — σ′=1 makes every pattern
  // visible everywhere, and a single worker's mined supports are the union
  // supports (there is no shard it could be missing from).
  const bool count_phase = options_.two_phase && sigma_prime > 1 &&
                           workers_.size() > 1 && !merged.empty();
  NamedPatternList candidates;
  std::vector<Frequency> totals;
  double count_ms = 0;
  if (count_phase) {
    candidates.reserve(merged.size());
    for (auto& [key, entry] : merged) {
      candidates.push_back(NamedPattern{entry.items, 0});
    }
    // All frequencies are 0, so the canonical order is lexicographic —
    // every worker sees the identical, deterministic candidate list.
    SortNamedPatterns(&candidates);

    if (count_requests_ != nullptr) count_requests_->Add(workers_.size());
    if (count_candidates_ != nullptr) count_candidates_->Add(candidates.size());
    if (count_patterns_shipped_ != nullptr) {
      count_patterns_shipped_->Add(candidates.size() * workers_.size());
    }

    CountRequest count_request;
    count_request.shard = 0;
    count_request.deadline_ms = spec.deadline_ms;
    // The same canonicalization as the cache key: MG-FSM always mines the
    // flat rank space, so its supports must be counted there too.
    count_request.flat = spec.flat || spec.algorithm == Algorithm::kMgFsm;
    count_request.gamma = spec.params.gamma;
    count_request.lambda = spec.params.lambda;
    count_request.candidates = candidates;

    const Stopwatch count_watch;
    std::vector<CountReply> count_replies(workers_.size());
    pool_->ParallelFor(workers_.size(), [&](size_t w) {
      WorkerSlot& slot = *workers_[w];
      std::lock_guard<std::mutex> lock(slot.mu);
      try {
        if (!slot.client) {
          slot.client = std::make_unique<NetClient>(
              slot.address.host, slot.address.port, options_.client);
        }
        obs::Span count_span(&obs::Tracer::Global(), scatter_span.context(),
                             "router.count");
        count_span.Tag("worker", slot.address.host + ":" +
                                     std::to_string(slot.address.port));
        count_span.Tag("candidates", static_cast<double>(candidates.size()));
        CountRequest leg = count_request;
        leg.trace =
            count_span.active() ? count_span.context() : shard_spec.trace;
        CountReply reply = slot.client->Count(leg);
        if (reply.supports.size() != candidates.size()) {
          throw ServeError(ServeErrorCode::kExecutionFailed,
                           "count reply carries " +
                               std::to_string(reply.supports.size()) +
                               " supports for " +
                               std::to_string(candidates.size()) +
                               " candidates");
        }
        count_replies[w] = std::move(reply);
        errors[w].clear();
      } catch (const ServeError& e) {
        codes[w] = e.code();
        errors[w] = e.what();
      } catch (const std::exception& e) {
        codes[w] = ServeErrorCode::kExecutionFailed;
        errors[w] = e.what();
      }
    });
    count_ms = count_watch.ElapsedMs();
    if (count_phase_ms_ != nullptr) count_phase_ms_->Record(count_ms);
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (!errors[w].empty()) {
        if (scatter_worker_errors_ != nullptr) scatter_worker_errors_->Add();
        scatter_span.Tag("outcome", "worker_error");
        maybe_log_slow("worker_error", candidates.size(), count_ms);
        throw ServeError(codes[w],
                         "worker " + workers_[w]->address.host + ":" +
                             std::to_string(workers_[w]->address.port) + ": " +
                             errors[w]);
      }
    }
    totals.assign(candidates.size(), 0);
    for (const CountReply& reply : count_replies) {
      for (size_t i = 0; i < totals.size(); ++i) {
        totals[i] += reply.supports[i];
      }
    }
  }

  obs::Span merge_span(&obs::Tracer::Global(), scatter_span.context(),
                       "router.merge");

  // Re-apply the caller's σ to the exact union supports, re-sort into the
  // canonical wire order, and re-cut top-k.
  MineResponse response;
  if (count_phase) {
    response.patterns.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (totals[i] < spec.params.sigma) continue;
      response.patterns.push_back(
          NamedPattern{std::move(candidates[i].items), totals[i]});
    }
  } else {
    response.patterns.reserve(merged.size());
    for (auto& [key, entry] : merged) {
      if (entry.frequency < spec.params.sigma) continue;
      response.patterns.push_back(
          NamedPattern{std::move(entry.items), entry.frequency});
    }
  }
  SortNamedPatterns(&response.patterns);
  if (spec.top_k > 0 && response.patterns.size() > spec.top_k) {
    response.patterns.resize(spec.top_k);
  }

  // The merged RunResult: accounting sums across workers, wall-clock fields
  // take the max (the scatter ran them concurrently), aborted ORs.
  bool first = true;
  RunResult& run = response.run;
  double server_ms = 0;
  for (const MineReply& reply : replies) {
    server_ms = std::max(server_ms, reply.server_ms);
    response.cache_hit = response.cache_hit || reply.cache_hit;
    response.coalesced = response.coalesced || reply.coalesced;
    if (first) {
      run = reply.run;
      first = false;
      continue;
    }
    run.aborted = run.aborted || reply.run.aborted;
    run.miner_stats.Merge(reply.run.miner_stats);
    run.gsp_stats.extended_items += reply.run.gsp_stats.extended_items;
    run.gsp_stats.candidates += reply.run.gsp_stats.candidates;
    run.gsp_stats.database_scans =
        std::max(run.gsp_stats.database_scans,
                 reply.run.gsp_stats.database_scans);
    run.partition_shape.Merge(reply.run.partition_shape);
    run.job.times.map_ms = std::max(run.job.times.map_ms,
                                    reply.run.job.times.map_ms);
    run.job.times.shuffle_ms = std::max(run.job.times.shuffle_ms,
                                        reply.run.job.times.shuffle_ms);
    run.job.times.reduce_ms = std::max(run.job.times.reduce_ms,
                                       reply.run.job.times.reduce_ms);
    run.job.counters.Merge(reply.run.job.counters);
    run.mine_ms = std::max(run.mine_ms, reply.run.mine_ms);
    run.filter_ms = std::max(run.filter_ms, reply.run.filter_ms);
    run.total_ms = std::max(run.total_ms, reply.run.total_ms);
    run.patterns_mined += reply.run.patterns_mined;
  }
  // Pattern accounting of the *merged* answer, not the scatter's σ′
  // over-mining: what this response actually contains.
  run.patterns_emitted = response.patterns.size();
  response.server_ms = server_ms;
  merge_span.Tag("patterns", static_cast<double>(response.patterns.size()));
  merge_span.End();
  scatter_span.Tag("outcome", "ok");
  if (count_phase) {
    scatter_span.Tag("candidates", static_cast<double>(candidates.size()));
    scatter_span.Tag("count_ms", count_ms);
  }
  scatter_span.End();
  maybe_log_slow("ok", candidates.size(), count_ms);
  return response;
}

serve::ServiceStats RouterBackend::AggregateStats() {
  serve::ServiceStats total;
  bool first = true;
  for (auto& slot : workers_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (!slot->client) {
      slot->client = std::make_unique<NetClient>(
          slot->address.host, slot->address.port, options_.client);
    }
    const serve::ServiceStats stats = slot->client->Stats();
    total.submitted += stats.submitted;
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.coalesced += stats.coalesced;
    total.invalid += stats.invalid;
    total.completed += stats.completed;
    total.rejected += stats.rejected;
    total.cancelled += stats.cancelled;
    total.deadline_expired += stats.deadline_expired;
    total.failed += stats.failed;
    total.executions += stats.executions;
    total.cache_entries += stats.cache_entries;
    total.cache_bytes += stats.cache_bytes;
    total.cache_evictions += stats.cache_evictions;
    total.cache_oversized_rejects += stats.cache_oversized_rejects;
    total.queue_depth += stats.queue_depth;
    if (first) {
      total.hit_p50_ms = stats.hit_p50_ms;
      total.hit_p95_ms = stats.hit_p95_ms;
      total.hit_mean_ms = stats.hit_mean_ms;
      total.mine_p50_ms = stats.mine_p50_ms;
      total.mine_p95_ms = stats.mine_p95_ms;
      total.mine_mean_ms = stats.mine_mean_ms;
      first = false;
    } else {
      total.hit_p50_ms = std::max(total.hit_p50_ms, stats.hit_p50_ms);
      total.hit_p95_ms = std::max(total.hit_p95_ms, stats.hit_p95_ms);
      total.hit_mean_ms = std::max(total.hit_mean_ms, stats.hit_mean_ms);
      total.mine_p50_ms = std::max(total.mine_p50_ms, stats.mine_p50_ms);
      total.mine_p95_ms = std::max(total.mine_p95_ms, stats.mine_p95_ms);
      total.mine_mean_ms = std::max(total.mine_mean_ms, stats.mine_mean_ms);
    }
  }
  return total;
}

}  // namespace lash::net
