#include "net/socket.h"

#include <cerrno>
#include <cstring>

#ifdef __unix__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace lash::net {

#ifdef __unix__

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

}  // namespace

ListenSocket ListenTcp(const std::string& address, uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("invalid bind address: " + address);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ThrowErrno("bind " + address + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), 128) != 0) ThrowErrno("listen");
  SetNonBlocking(fd.get());

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ThrowErrno("getsockname");
  }
  ListenSocket result;
  result.fd = std::move(fd);
  result.bound_port = ntohs(bound.sin_port);
  return result;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("fcntl O_NONBLOCK");
  }
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

#else  // !__unix__

void UniqueFd::Reset() { fd_ = -1; }

ListenSocket ListenTcp(const std::string&, uint16_t) {
  throw SocketError("lash::net requires a POSIX platform");
}

void SetNonBlocking(int) {
  throw SocketError("lash::net requires a POSIX platform");
}

void SetNoDelay(int) {}

#endif  // __unix__

}  // namespace lash::net
