#include "net/wire.h"

#include <algorithm>

#include "io/io_error.h"
#include "util/varint.h"

namespace lash::net {

namespace {

/// 8-byte little-endian u64 (span ids cross the wire fixed-width — they are
/// opaque 64-bit tokens, not counts, so varint would only obscure them).
void PutFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadFixed64(ByteReader& reader, const char* what) {
  const auto bytes = reader.ReadBytes(8, what);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return value;
}

/// Starts every payload: version byte + message type.
void AppendPayloadHeader(std::string* out, MessageType type) {
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(type));
}

/// The 24-byte trace header shared by kMineRequestV2/V3 and kCountRequest:
/// 16-byte trace id + 8-byte LE parent span. An inactive context encodes
/// as 24 zero bytes and decodes back inactive.
void AppendTraceContext(std::string* out, const obs::TraceContext& trace) {
  out->append(reinterpret_cast<const char*>(trace.trace_id.bytes.data()),
              trace.trace_id.bytes.size());
  PutFixed64(out, trace.parent_span);
}

obs::TraceContext ReadTraceContext(ByteReader& reader) {
  obs::TraceContext trace;
  const auto id = reader.ReadBytes(trace.trace_id.bytes.size(), "trace id");
  std::copy(id.begin(), id.end(),
            reinterpret_cast<char*>(trace.trace_id.bytes.data()));
  trace.parent_span = ReadFixed64(reader, "parent span");
  return trace;
}

/// Consumes and validates the payload header, returning a reader positioned
/// at the body. `expected` rejects a payload of the wrong type (a stats
/// reply arriving where a mine reply was awaited is a protocol error, not
/// something to reinterpret).
ByteReader OpenPayload(std::string_view payload, MessageType expected,
                       const char* what) {
  ByteReader reader(payload, what);
  const uint8_t version =
      static_cast<uint8_t>(reader.ReadBytes(1, "wire version")[0]);
  if (version != kWireVersion) {
    throw IoError(IoErrorKind::kBadVersion, 0,
                  std::string(what) + ": wire version " +
                      std::to_string(version) + " (this peer understands " +
                      std::to_string(kWireVersion) + ")");
  }
  const uint8_t type =
      static_cast<uint8_t>(reader.ReadBytes(1, "message type")[0]);
  if (type != static_cast<uint8_t>(expected)) {
    reader.Malformed("unexpected message type " + std::to_string(type));
  }
  return reader;
}

void EncodeServiceStats(std::string* out, const serve::ServiceStats& stats) {
  PutVarint64(out, stats.submitted);
  PutVarint64(out, stats.hits);
  PutVarint64(out, stats.misses);
  PutVarint64(out, stats.coalesced);
  PutVarint64(out, stats.invalid);
  PutVarint64(out, stats.completed);
  PutVarint64(out, stats.rejected);
  PutVarint64(out, stats.cancelled);
  PutVarint64(out, stats.deadline_expired);
  PutVarint64(out, stats.failed);
  PutVarint64(out, stats.executions);
  PutVarint64(out, stats.cache_entries);
  PutVarint64(out, stats.cache_bytes);
  PutVarint64(out, stats.cache_evictions);
  PutVarint64(out, stats.cache_oversized_rejects);
  PutVarint64(out, stats.queue_depth);
  PutDoubleBits(out, stats.hit_p50_ms);
  PutDoubleBits(out, stats.hit_p95_ms);
  PutDoubleBits(out, stats.hit_mean_ms);
  PutDoubleBits(out, stats.mine_p50_ms);
  PutDoubleBits(out, stats.mine_p95_ms);
  PutDoubleBits(out, stats.mine_mean_ms);
}

serve::ServiceStats DecodeServiceStats(ByteReader& reader) {
  serve::ServiceStats stats;
  stats.submitted = reader.ReadVarint64("submitted");
  stats.hits = reader.ReadVarint64("hits");
  stats.misses = reader.ReadVarint64("misses");
  stats.coalesced = reader.ReadVarint64("coalesced");
  stats.invalid = reader.ReadVarint64("invalid");
  stats.completed = reader.ReadVarint64("completed");
  stats.rejected = reader.ReadVarint64("rejected");
  stats.cancelled = reader.ReadVarint64("cancelled");
  stats.deadline_expired = reader.ReadVarint64("deadline expired");
  stats.failed = reader.ReadVarint64("failed");
  stats.executions = reader.ReadVarint64("executions");
  stats.cache_entries = reader.ReadVarint64("cache entries");
  stats.cache_bytes = reader.ReadVarint64("cache bytes");
  stats.cache_evictions = reader.ReadVarint64("cache evictions");
  stats.cache_oversized_rejects =
      reader.ReadVarint64("cache oversized rejects");
  stats.queue_depth = reader.ReadVarint64("queue depth");
  stats.hit_p50_ms = ReadDoubleBits(reader, "hit p50");
  stats.hit_p95_ms = ReadDoubleBits(reader, "hit p95");
  stats.hit_mean_ms = ReadDoubleBits(reader, "hit mean");
  stats.mine_p50_ms = ReadDoubleBits(reader, "mine p50");
  stats.mine_p95_ms = ReadDoubleBits(reader, "mine p95");
  stats.mine_mean_ms = ReadDoubleBits(reader, "mine mean");
  return stats;
}

[[noreturn]] void ThrowOversized(uint64_t size) {
  throw IoError(IoErrorKind::kMalformed, 0,
                "wire frame: payload of " + std::to_string(size) +
                    " bytes exceeds the " +
                    std::to_string(kMaxFramePayloadBytes) + "-byte cap");
}

}  // namespace

void AppendFrame(std::string* out, std::string_view payload) {
  if (payload.size() > kMaxFramePayloadBytes) ThrowOversized(payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  out->append(payload);
}

FrameStatus TryExtractFrame(std::string* buffer, std::string* payload) {
  if (buffer->size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>((*buffer)[i]))
              << (8 * i);
  }
  if (length > kMaxFramePayloadBytes) ThrowOversized(length);
  if (buffer->size() < kFrameHeaderBytes + length) return FrameStatus::kNeedMore;
  payload->assign(*buffer, kFrameHeaderBytes, length);
  buffer->erase(0, kFrameHeaderBytes + length);
  return FrameStatus::kFrame;
}

MessageType PeekMessageType(std::string_view payload) {
  ByteReader reader(payload, "wire payload");
  const uint8_t version =
      static_cast<uint8_t>(reader.ReadBytes(1, "wire version")[0]);
  if (version != kWireVersion) {
    throw IoError(IoErrorKind::kBadVersion, 0,
                  "wire payload: wire version " + std::to_string(version) +
                      " (this peer understands " +
                      std::to_string(kWireVersion) + ")");
  }
  const uint8_t type =
      static_cast<uint8_t>(reader.ReadBytes(1, "message type")[0]);
  if (type < static_cast<uint8_t>(MessageType::kMineRequest) ||
      type > static_cast<uint8_t>(MessageType::kMineRequestV3)) {
    reader.Malformed("unknown message type " + std::to_string(type));
  }
  return static_cast<MessageType>(type);
}

std::string EncodeMineRequest(const serve::TaskSpec& spec) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMineRequest);
  PutVarint64(&payload, spec.shard);
  PutDoubleBits(&payload, spec.deadline_ms);
  // Dataset id 0 on the wire: the client cannot know the server's
  // process-unique dataset id, and the server re-keys against its own
  // shard ids anyway.
  payload.append(serve::EncodeCacheKey(0, spec));
  return payload;
}

std::string EncodeMineRequestV2(const serve::TaskSpec& spec) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMineRequestV2);
  AppendTraceContext(&payload, spec.trace);
  PutVarint64(&payload, spec.shard);
  PutDoubleBits(&payload, spec.deadline_ms);
  payload.append(serve::EncodeCacheKey(0, spec));
  return payload;
}

std::string EncodeMineRequestV3(const serve::TaskSpec& spec) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMineRequestV3);
  AppendTraceContext(&payload, spec.trace);
  PutVarint64(&payload, spec.shard);
  PutDoubleBits(&payload, spec.deadline_ms);
  // The override sits with the other execution-shape knobs, in front of
  // the cache-key bytes, which stay verbatim v1.
  PutVarint64(&payload, spec.shard_sigma);
  payload.append(serve::EncodeCacheKey(0, spec));
  return payload;
}

MineRequest DecodeMineRequest(std::string_view payload) {
  const MessageType type = PeekMessageType(payload);
  if (type != MessageType::kMineRequest &&
      type != MessageType::kMineRequestV2 &&
      type != MessageType::kMineRequestV3) {
    ByteReader header(payload, "mine request");
    header.ReadBytes(2, "payload header");
    header.Malformed("unexpected message type " +
                     std::to_string(static_cast<unsigned>(type)));
  }
  ByteReader reader = OpenPayload(payload, type, "mine request");
  obs::TraceContext trace;
  if (type != MessageType::kMineRequest) {
    trace = ReadTraceContext(reader);
  }
  const uint64_t shard = reader.ReadVarint64("shard");
  const double deadline_ms = ReadDoubleBits(reader, "deadline");
  const Frequency shard_sigma = type == MessageType::kMineRequestV3
                                    ? reader.ReadVarint64("shard sigma")
                                    : 0;
  MineRequest request;
  request.spec = serve::DecodeTaskSpec(payload.substr(reader.pos()));
  request.spec.shard = shard;
  request.spec.deadline_ms = deadline_ms;
  request.spec.shard_sigma = shard_sigma;
  request.spec.trace = trace;
  return request;
}

std::string EncodeMineResponse(const MineResponse& response) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMineResponse);
  payload.push_back((response.cache_hit ? 1 : 0) |
                    (response.coalesced ? 2 : 0));
  PutDoubleBits(&payload, response.server_ms);
  EncodeRunResult(&payload, response.run);
  EncodeNamedPatterns(&payload, response.patterns);
  return payload;
}

MineResponse DecodeMineResponse(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kMineResponse,
                                  "mine response");
  const uint8_t flags =
      static_cast<uint8_t>(reader.ReadBytes(1, "response flags")[0]);
  if (flags > 3) reader.Malformed("response flag byte out of range");
  MineResponse response;
  response.cache_hit = (flags & 1) != 0;
  response.coalesced = (flags & 2) != 0;
  response.server_ms = ReadDoubleBits(reader, "server ms");
  response.run = DecodeRunResult(reader);
  response.patterns = DecodeNamedPatterns(reader);
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after mine response");
  }
  return response;
}

std::string EncodeErrorResponse(serve::ServeErrorCode code,
                                std::string_view message) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kErrorResponse);
  payload.push_back(static_cast<char>(code));
  PutVarint64(&payload, message.size());
  payload.append(message);
  return payload;
}

ErrorResponse DecodeErrorResponse(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kErrorResponse,
                                  "error response");
  const uint8_t code =
      static_cast<uint8_t>(reader.ReadBytes(1, "error code")[0]);
  if (code > static_cast<uint8_t>(serve::ServeErrorCode::kExecutionFailed)) {
    reader.Malformed("error code byte out of range");
  }
  ErrorResponse error;
  error.code = static_cast<serve::ServeErrorCode>(code);
  const uint64_t length = reader.ReadVarint64("error message length");
  error.message = reader.ReadBytes(length, "error message");
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after error response");
  }
  return error;
}

std::string EncodeStatsRequest() {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kStatsRequest);
  return payload;
}

std::string EncodeStatsResponse(const serve::ServiceStats& stats) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kStatsResponse);
  EncodeServiceStats(&payload, stats);
  return payload;
}

serve::ServiceStats DecodeStatsResponse(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kStatsResponse,
                                  "stats response");
  serve::ServiceStats stats = DecodeServiceStats(reader);
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after stats response");
  }
  return stats;
}

std::string EncodeMetricsRequest() {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMetricsRequest);
  return payload;
}

std::string EncodeMetricsResponse(
    const std::vector<obs::MetricSample>& samples) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMetricsResponse);
  PutVarint64(&payload, samples.size());
  for (const obs::MetricSample& sample : samples) {
    PutVarint64(&payload, sample.name.size());
    payload.append(sample.name);
    PutDoubleBits(&payload, sample.value);
  }
  return payload;
}

std::vector<obs::MetricSample> DecodeMetricsResponse(
    std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kMetricsResponse,
                                  "metrics response");
  const uint64_t count = reader.ReadVarint64("sample count");
  std::vector<obs::MetricSample> samples;
  // Reserve conservatively: `count` is attacker-controlled until the reads
  // below prove the payload actually holds that many samples.
  samples.reserve(std::min<uint64_t>(count, 4096));
  for (uint64_t i = 0; i < count; ++i) {
    obs::MetricSample sample;
    const uint64_t length = reader.ReadVarint64("metric name length");
    sample.name = reader.ReadBytes(length, "metric name");
    sample.value = ReadDoubleBits(reader, "metric value");
    samples.push_back(std::move(sample));
  }
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after metrics response");
  }
  return samples;
}

std::string EncodeCountRequest(const CountRequest& request) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kCountRequest);
  AppendTraceContext(&payload, request.trace);
  PutVarint64(&payload, request.shard);
  PutDoubleBits(&payload, request.deadline_ms);
  payload.push_back(request.flat ? 1 : 0);
  PutVarint32(&payload, request.gamma);
  PutVarint32(&payload, request.lambda);
  EncodeNamedPatterns(&payload, request.candidates);
  return payload;
}

CountRequest DecodeCountRequest(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kCountRequest,
                                  "count request");
  CountRequest request;
  request.trace = ReadTraceContext(reader);
  request.shard = reader.ReadVarint64("shard");
  request.deadline_ms = ReadDoubleBits(reader, "deadline");
  const uint8_t flat = static_cast<uint8_t>(reader.ReadBytes(1, "flat")[0]);
  if (flat > 1) reader.Malformed("flat byte out of range");
  request.flat = flat != 0;
  request.gamma = reader.ReadVarint32("gamma");
  request.lambda = reader.ReadVarint32("lambda");
  request.candidates = DecodeNamedPatterns(reader);
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after count request");
  }
  return request;
}

std::string EncodeCountResponse(const CountResponse& response) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kCountResponse);
  PutDoubleBits(&payload, response.server_ms);
  EncodeFrequencyList(&payload, response.supports);
  return payload;
}

CountResponse DecodeCountResponse(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kCountResponse,
                                  "count response");
  CountResponse response;
  response.server_ms = ReadDoubleBits(reader, "server ms");
  response.supports = DecodeFrequencyList(reader);
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after count response");
  }
  return response;
}

}  // namespace lash::net
