#include "net/wire.h"

#include "io/io_error.h"
#include "util/varint.h"

namespace lash::net {

namespace {

/// Starts every payload: version byte + message type.
void AppendPayloadHeader(std::string* out, MessageType type) {
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(type));
}

/// Consumes and validates the payload header, returning a reader positioned
/// at the body. `expected` rejects a payload of the wrong type (a stats
/// reply arriving where a mine reply was awaited is a protocol error, not
/// something to reinterpret).
ByteReader OpenPayload(std::string_view payload, MessageType expected,
                       const char* what) {
  ByteReader reader(payload, what);
  const uint8_t version =
      static_cast<uint8_t>(reader.ReadBytes(1, "wire version")[0]);
  if (version != kWireVersion) {
    throw IoError(IoErrorKind::kBadVersion, 0,
                  std::string(what) + ": wire version " +
                      std::to_string(version) + " (this peer understands " +
                      std::to_string(kWireVersion) + ")");
  }
  const uint8_t type =
      static_cast<uint8_t>(reader.ReadBytes(1, "message type")[0]);
  if (type != static_cast<uint8_t>(expected)) {
    reader.Malformed("unexpected message type " + std::to_string(type));
  }
  return reader;
}

void EncodeServiceStats(std::string* out, const serve::ServiceStats& stats) {
  PutVarint64(out, stats.submitted);
  PutVarint64(out, stats.hits);
  PutVarint64(out, stats.misses);
  PutVarint64(out, stats.coalesced);
  PutVarint64(out, stats.invalid);
  PutVarint64(out, stats.completed);
  PutVarint64(out, stats.rejected);
  PutVarint64(out, stats.cancelled);
  PutVarint64(out, stats.deadline_expired);
  PutVarint64(out, stats.failed);
  PutVarint64(out, stats.executions);
  PutVarint64(out, stats.cache_entries);
  PutVarint64(out, stats.cache_bytes);
  PutVarint64(out, stats.cache_evictions);
  PutVarint64(out, stats.cache_oversized_rejects);
  PutVarint64(out, stats.queue_depth);
  PutDoubleBits(out, stats.hit_p50_ms);
  PutDoubleBits(out, stats.hit_p95_ms);
  PutDoubleBits(out, stats.hit_mean_ms);
  PutDoubleBits(out, stats.mine_p50_ms);
  PutDoubleBits(out, stats.mine_p95_ms);
  PutDoubleBits(out, stats.mine_mean_ms);
}

serve::ServiceStats DecodeServiceStats(ByteReader& reader) {
  serve::ServiceStats stats;
  stats.submitted = reader.ReadVarint64("submitted");
  stats.hits = reader.ReadVarint64("hits");
  stats.misses = reader.ReadVarint64("misses");
  stats.coalesced = reader.ReadVarint64("coalesced");
  stats.invalid = reader.ReadVarint64("invalid");
  stats.completed = reader.ReadVarint64("completed");
  stats.rejected = reader.ReadVarint64("rejected");
  stats.cancelled = reader.ReadVarint64("cancelled");
  stats.deadline_expired = reader.ReadVarint64("deadline expired");
  stats.failed = reader.ReadVarint64("failed");
  stats.executions = reader.ReadVarint64("executions");
  stats.cache_entries = reader.ReadVarint64("cache entries");
  stats.cache_bytes = reader.ReadVarint64("cache bytes");
  stats.cache_evictions = reader.ReadVarint64("cache evictions");
  stats.cache_oversized_rejects =
      reader.ReadVarint64("cache oversized rejects");
  stats.queue_depth = reader.ReadVarint64("queue depth");
  stats.hit_p50_ms = ReadDoubleBits(reader, "hit p50");
  stats.hit_p95_ms = ReadDoubleBits(reader, "hit p95");
  stats.hit_mean_ms = ReadDoubleBits(reader, "hit mean");
  stats.mine_p50_ms = ReadDoubleBits(reader, "mine p50");
  stats.mine_p95_ms = ReadDoubleBits(reader, "mine p95");
  stats.mine_mean_ms = ReadDoubleBits(reader, "mine mean");
  return stats;
}

[[noreturn]] void ThrowOversized(uint64_t size) {
  throw IoError(IoErrorKind::kMalformed, 0,
                "wire frame: payload of " + std::to_string(size) +
                    " bytes exceeds the " +
                    std::to_string(kMaxFramePayloadBytes) + "-byte cap");
}

}  // namespace

void AppendFrame(std::string* out, std::string_view payload) {
  if (payload.size() > kMaxFramePayloadBytes) ThrowOversized(payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  out->append(payload);
}

FrameStatus TryExtractFrame(std::string* buffer, std::string* payload) {
  if (buffer->size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>((*buffer)[i]))
              << (8 * i);
  }
  if (length > kMaxFramePayloadBytes) ThrowOversized(length);
  if (buffer->size() < kFrameHeaderBytes + length) return FrameStatus::kNeedMore;
  payload->assign(*buffer, kFrameHeaderBytes, length);
  buffer->erase(0, kFrameHeaderBytes + length);
  return FrameStatus::kFrame;
}

MessageType PeekMessageType(std::string_view payload) {
  ByteReader reader(payload, "wire payload");
  const uint8_t version =
      static_cast<uint8_t>(reader.ReadBytes(1, "wire version")[0]);
  if (version != kWireVersion) {
    throw IoError(IoErrorKind::kBadVersion, 0,
                  "wire payload: wire version " + std::to_string(version) +
                      " (this peer understands " +
                      std::to_string(kWireVersion) + ")");
  }
  const uint8_t type =
      static_cast<uint8_t>(reader.ReadBytes(1, "message type")[0]);
  if (type < static_cast<uint8_t>(MessageType::kMineRequest) ||
      type > static_cast<uint8_t>(MessageType::kStatsResponse)) {
    reader.Malformed("unknown message type " + std::to_string(type));
  }
  return static_cast<MessageType>(type);
}

std::string EncodeMineRequest(const serve::TaskSpec& spec) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMineRequest);
  PutVarint64(&payload, spec.shard);
  PutDoubleBits(&payload, spec.deadline_ms);
  // Dataset id 0 on the wire: the client cannot know the server's
  // process-unique dataset id, and the server re-keys against its own
  // shard ids anyway.
  payload.append(serve::EncodeCacheKey(0, spec));
  return payload;
}

MineRequest DecodeMineRequest(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kMineRequest,
                                  "mine request");
  const uint64_t shard = reader.ReadVarint64("shard");
  const double deadline_ms = ReadDoubleBits(reader, "deadline");
  MineRequest request;
  request.spec = serve::DecodeTaskSpec(payload.substr(reader.pos()));
  request.spec.shard = shard;
  request.spec.deadline_ms = deadline_ms;
  return request;
}

std::string EncodeMineResponse(const MineResponse& response) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kMineResponse);
  payload.push_back((response.cache_hit ? 1 : 0) |
                    (response.coalesced ? 2 : 0));
  PutDoubleBits(&payload, response.server_ms);
  EncodeRunResult(&payload, response.run);
  EncodeNamedPatterns(&payload, response.patterns);
  return payload;
}

MineResponse DecodeMineResponse(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kMineResponse,
                                  "mine response");
  const uint8_t flags =
      static_cast<uint8_t>(reader.ReadBytes(1, "response flags")[0]);
  if (flags > 3) reader.Malformed("response flag byte out of range");
  MineResponse response;
  response.cache_hit = (flags & 1) != 0;
  response.coalesced = (flags & 2) != 0;
  response.server_ms = ReadDoubleBits(reader, "server ms");
  response.run = DecodeRunResult(reader);
  response.patterns = DecodeNamedPatterns(reader);
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after mine response");
  }
  return response;
}

std::string EncodeErrorResponse(serve::ServeErrorCode code,
                                std::string_view message) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kErrorResponse);
  payload.push_back(static_cast<char>(code));
  PutVarint64(&payload, message.size());
  payload.append(message);
  return payload;
}

ErrorResponse DecodeErrorResponse(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kErrorResponse,
                                  "error response");
  const uint8_t code =
      static_cast<uint8_t>(reader.ReadBytes(1, "error code")[0]);
  if (code > static_cast<uint8_t>(serve::ServeErrorCode::kExecutionFailed)) {
    reader.Malformed("error code byte out of range");
  }
  ErrorResponse error;
  error.code = static_cast<serve::ServeErrorCode>(code);
  const uint64_t length = reader.ReadVarint64("error message length");
  error.message = reader.ReadBytes(length, "error message");
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after error response");
  }
  return error;
}

std::string EncodeStatsRequest() {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kStatsRequest);
  return payload;
}

std::string EncodeStatsResponse(const serve::ServiceStats& stats) {
  std::string payload;
  AppendPayloadHeader(&payload, MessageType::kStatsResponse);
  EncodeServiceStats(&payload, stats);
  return payload;
}

serve::ServiceStats DecodeStatsResponse(std::string_view payload) {
  ByteReader reader = OpenPayload(payload, MessageType::kStatsResponse,
                                  "stats response");
  serve::ServiceStats stats = DecodeServiceStats(reader);
  if (!reader.AtEnd()) {
    reader.Malformed("trailing bytes after stats response");
  }
  return stats;
}

}  // namespace lash::net
