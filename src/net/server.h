#ifndef LASH_NET_SERVER_H_
#define LASH_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace lash::net {

/// A one-shot handle for answering one request frame. Thread-safe and
/// detachable: the backend may call Send from any thread, at any later time
/// (the epoll loop wakes itself up and flushes), and a Send that arrives
/// after the connection or the server died is a silent no-op — the reply
/// simply has nowhere to go, exactly like a TCP peer that hung up.
///
/// Replies are delivered *in request order per connection* regardless of
/// completion order: the server stamps each incoming frame with a serial
/// and buffers out-of-order completions until their turn.
class Reply {
 public:
  /// Defined in server.cc; incomplete everywhere else, so only the server
  /// can mint live replies.
  struct Target;

  Reply() = default;
  explicit Reply(std::shared_ptr<Target> target)
      : target_(std::move(target)) {}

  /// Queues `payload` (one wire payload, framed by the server) as the
  /// answer to the request this Reply was created for. Only the first call
  /// has an effect.
  void Send(std::string payload) const;

 private:
  std::shared_ptr<Target> target_;
};

/// What a NetServer serves. Handle() runs on the event-loop thread and must
/// not block: hand long work to an executor (the mining service already is
/// one; support counting goes to the worker backend's own counting pool)
/// and answer through the Reply when done. Throwing IoError (or
/// anything else) out of Handle closes that connection — the peer sent a
/// frame this backend cannot parse, and the only safe protocol state is
/// "gone" — while every other connection keeps being served.
class Backend {
 public:
  virtual ~Backend() = default;

  /// `payload` is one complete frame payload; the view is valid only for
  /// the duration of the call.
  virtual void Handle(std::string_view payload, Reply reply) = 0;

  /// Polled during graceful shutdown: the server exits once the listener
  /// is closed, all connections have drained, and this returns 0.
  virtual size_t InFlight() const { return 0; }
};

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port.
  uint32_t max_frame_bytes = 256u << 20;
  /// Registry for the net.server.* instruments: live connection count,
  /// accepted connections, frames/bytes in and out, protocol errors
  /// (malformed frames — each closes its connection) and per-connection
  /// I/O errors. Null (default) records nothing. All updates happen on the
  /// event-loop thread.
  obs::MetricsRegistry* metrics = nullptr;
};

/// A single-threaded epoll event-loop TCP server speaking the framed wire
/// protocol (net/wire.h): non-blocking sockets, one read and one write
/// buffer per connection, frames dispatched to the backend as they
/// complete. Linux-only (construction throws elsewhere).
///
/// Shutdown contract: Shutdown() is async-signal-safe (an atomic flag plus
/// an eventfd write), so a SIGTERM handler may call it directly. The loop
/// then *drains gracefully*: the listener closes (no new connections),
/// idle connections close, in-flight requests finish and their replies are
/// flushed, then Run() returns.
class NetServer {
 public:
  /// Binds and listens immediately — port() is valid (and the port
  /// occupied) as soon as the constructor returns, before Run().
  NetServer(ServerOptions options, Backend* backend);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (resolves an ephemeral-port request).
  uint16_t port() const;

  /// Runs the event loop on the calling thread until Shutdown().
  void Run();

  /// Requests a graceful drain; safe from signal handlers and any thread.
  void Shutdown();

  /// Shared state between the public handle, the event loop, and live
  /// Replies. Defined in server.cc.
  struct Core;

 private:
  std::shared_ptr<Core> core_;
};

}  // namespace lash::net

#endif  // LASH_NET_SERVER_H_
