#ifndef LASH_NET_SOCKET_H_
#define LASH_NET_SOCKET_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace lash::net {

/// RAII file descriptor (socket, epoll, eventfd). Movable, not copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Thrown for socket-layer failures (bind, listen, connect plumbing). The
/// client library converts these into typed ServeErrors before they reach
/// callers; the server surfaces them at startup.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& message)
      : std::runtime_error(message) {}
};

/// A bound, listening TCP socket.
struct ListenSocket {
  UniqueFd fd;
  uint16_t bound_port = 0;  ///< The actual port (resolves port 0 requests).
};

/// Binds and listens on `address:port` (IPv4 dotted quad; port 0 asks the
/// kernel for an ephemeral port). SO_REUSEADDR is set; the socket is
/// non-blocking. Throws SocketError.
ListenSocket ListenTcp(const std::string& address, uint16_t port);

/// Sets O_NONBLOCK on `fd`. Throws SocketError.
void SetNonBlocking(int fd);

/// Disables Nagle (TCP_NODELAY) — request/response framing wants the frame
/// on the wire now, not batched. Best-effort (ignored for non-TCP fds).
void SetNoDelay(int fd);

}  // namespace lash::net

#endif  // LASH_NET_SOCKET_H_
