#ifndef LASH_NET_ROUTER_H_
#define LASH_NET_ROUTER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace lash::net {

struct RouterOptions {
  /// The support threshold scattered to each shard. 1 (the default) makes
  /// the router *exact* — see the merge contract on RouterBackend. Raising
  /// it trades completeness for shard-side work: a pattern whose union
  /// support is ≥ σ but whose per-shard support is everywhere below
  /// `shard_sigma` is lost.
  Frequency shard_sigma = 1;
  /// Per-worker client knobs (timeouts, retries).
  ClientOptions client;
  /// Threads answering concurrent router requests (0 = worker count).
  size_t scatter_threads = 0;
  /// Registry for the router.scatter.* instruments; also what the router
  /// answers a kMetricsRequest from. Null disables both (the metrics RPC
  /// then returns an empty snapshot).
  obs::MetricsRegistry* metrics = nullptr;
};

/// The router backend: serves the same wire protocol as a worker, but
/// answers each mine request by scattering it across the shard workers and
/// merging their pattern streams.
///
/// Merge contract (ROADMAP "Network tier"): shards partition the corpus by
/// *transactions*, so a pattern's union support is the plain sum of its
/// per-shard supports — summation keyed on the canonical item-name bytes is
/// an associative, commutative reduction, and merging workers in any
/// grouping or order yields the same multiset (router trees compose).
/// Exactness needs every contributing pattern visible: a union-frequent
/// pattern can sit below σ on every individual shard, so the scatter runs
/// at `shard_sigma` (default 1) and the caller's σ is re-applied to the
/// summed supports. Top-k is likewise deferred: workers mine un-truncated,
/// the router re-sorts the merged stream (canonical wire order) and re-cuts.
/// Closed/maximal filters do not distribute over this merge (they need the
/// union corpus's pattern lattice) and are rejected as invalid_task.
class RouterBackend : public Backend {
 public:
  RouterBackend(std::vector<WorkerAddress> workers, RouterOptions options);
  ~RouterBackend() override;

  void Handle(std::string_view payload, Reply reply) override;
  size_t InFlight() const override;

  /// Scatters one spec across all workers and merges (the Handle body,
  /// callable in-process; bench_net uses this directly). A spec carrying an
  /// active trace context opens a router.scatter span under it, one
  /// router.leg span per worker (whose context travels to that worker as
  /// the leg's kMineRequestV2 parent), and a router.merge span over the
  /// reduction — the cross-process halves of one merged trace tree.
  MineResponse Scatter(const serve::TaskSpec& spec);

  /// Sums the workers' counters (latency percentiles take the max — a
  /// cross-worker percentile cannot be reconstructed from percentiles).
  serve::ServiceStats AggregateStats();

 private:
  struct WorkerSlot {
    WorkerAddress address;
    std::mutex mu;  ///< One outstanding request per pooled connection.
    std::unique_ptr<NetClient> client;
  };

  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  RouterOptions options_;

  /// Null when no registry was given.
  obs::Counter* scatter_requests_ = nullptr;
  obs::Counter* scatter_worker_errors_ = nullptr;

  mutable std::mutex mu_;
  size_t inflight_ = 0;

  /// Runs Handle bodies off the event loop; declared last so it drains
  /// before the worker slots die.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace lash::net

#endif  // LASH_NET_ROUTER_H_
