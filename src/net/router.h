#ifndef LASH_NET_ROUTER_H_
#define LASH_NET_ROUTER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace lash::net {

struct RouterOptions {
  /// Two-phase candidate/count protocol (the default): phase 1 scatters the
  /// mine at the pigeonhole bound σ′ = max(1, ⌈σ/k⌉) for k workers — any
  /// pattern whose union support reaches σ must reach σ′ on at least one
  /// shard, so the union of per-shard results is a *complete* candidate
  /// set while each shard ships only its σ′-frequent patterns; phase 2
  /// sends the named union candidates back to every worker (kCountRequest),
  /// sums the exact per-shard supports, and re-cuts at σ. Output is
  /// byte-identical to the legacy one-phase σ′=1 scatter. False keeps the
  /// legacy path (the bench baseline): one phase at σ′=1, exact because
  /// every pattern is visible everywhere.
  bool two_phase = true;
  /// Default phase-1 scatter threshold σ′. 0 picks the mode's default —
  /// the pigeonhole bound when `two_phase`, 1 on the legacy path. A
  /// nonzero value overrides both (clamped to [1, σ]); on the legacy path
  /// raising it above 1 trades completeness for shard-side work. A
  /// per-request `TaskSpec::shard_sigma` overrides this per query.
  Frequency shard_sigma = 0;
  /// Per-worker client knobs (timeouts, retries).
  ClientOptions client;
  /// Threads answering concurrent router requests (0 = worker count).
  size_t scatter_threads = 0;
  /// Registry for the router.scatter.* / router.count.* instruments; also
  /// what the router answers a kMetricsRequest from. Null disables both
  /// (the metrics RPC then returns an empty snapshot).
  obs::MetricsRegistry* metrics = nullptr;
  /// Slow-query log threshold in milliseconds; 0 disables. A scatter whose
  /// total latency reaches the threshold logs one stderr line (outcome,
  /// latency, phase shape, candidate/count stats, trace id when present).
  double slow_query_ms = 0;
};

/// The router backend: serves the same wire protocol as a worker, but
/// answers each mine request by scattering it across the shard workers and
/// merging their pattern streams.
///
/// Merge contract (ROADMAP "Network tier"): shards partition the corpus by
/// *transactions*, so a pattern's union support is the plain sum of its
/// per-shard supports — summation keyed on the canonical item-name bytes is
/// an associative, commutative reduction, and merging workers in any
/// grouping or order yields the same multiset (router trees compose).
/// Exactness needs every σ-frequent pattern visible, and a union-frequent
/// pattern can sit below σ on every individual shard. Two ways to get it:
///
///   * Two-phase (default, RouterOptions::two_phase): scatter the mine at
///     the pigeonhole bound σ′ = max(1, ⌈σ/k⌉) — if supp(S) ≥ σ over k
///     shards, some shard holds ≥ ⌈σ/k⌉ of it — then recount the union
///     candidates exactly on every shard (kCountRequest) and sum. Each
///     shard ships only σ′-frequent patterns instead of its entire σ′=1
///     pattern universe.
///   * Legacy one-phase: scatter at σ′=1 so every pattern is visible, and
///     re-apply the caller's σ to the summed supports. Exact but pays the
///     σ′=1 tax in shard mining and pattern shipping.
///
/// Either way top-k is deferred: workers mine un-truncated, the router
/// re-sorts the merged stream (canonical wire order) and re-cuts.
/// Closed/maximal filters do not distribute over this merge (they need the
/// union corpus's pattern lattice) and are rejected as invalid_task.
class RouterBackend : public Backend {
 public:
  RouterBackend(std::vector<WorkerAddress> workers, RouterOptions options);
  ~RouterBackend() override;

  void Handle(std::string_view payload, Reply reply) override;
  size_t InFlight() const override;

  /// Scatters one spec across all workers and merges (the Handle body,
  /// callable in-process; bench_net uses this directly). A spec carrying an
  /// active trace context opens a router.scatter span under it, one
  /// router.leg span per worker (whose context travels to that worker as
  /// the leg's kMineRequestV2 parent), one router.count span per count leg
  /// when the two-phase count runs, and a router.merge span over the
  /// reduction — the cross-process halves of one merged trace tree.
  MineResponse Scatter(const serve::TaskSpec& spec);

  /// Sums the workers' counters (latency percentiles take the max — a
  /// cross-worker percentile cannot be reconstructed from percentiles).
  serve::ServiceStats AggregateStats();

 private:
  struct WorkerSlot {
    WorkerAddress address;
    std::mutex mu;  ///< One outstanding request per pooled connection.
    std::unique_ptr<NetClient> client;
  };

  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  RouterOptions options_;

  /// Resolves the effective phase-1 σ′ for `spec` (request override, then
  /// the option, then the mode default), clamped to [1, σ].
  Frequency ResolveShardSigma(const serve::TaskSpec& spec) const;

  /// Null when no registry was given.
  obs::Counter* scatter_requests_ = nullptr;
  obs::Counter* scatter_worker_errors_ = nullptr;
  obs::Counter* count_requests_ = nullptr;
  obs::Counter* count_candidates_ = nullptr;
  obs::Counter* count_patterns_shipped_ = nullptr;
  obs::LatencyHistogram* count_phase_ms_ = nullptr;

  mutable std::mutex mu_;
  size_t inflight_ = 0;

  /// Runs Handle bodies off the event loop; declared last so it drains
  /// before the worker slots die.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace lash::net

#endif  // LASH_NET_ROUTER_H_
