#ifndef LASH_NET_SERVICE_BACKEND_H_
#define LASH_NET_SERVICE_BACKEND_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "api/lash_api.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/mining_service.h"

namespace lash::net {

/// The worker backend: serves the framed wire protocol over a MiningService
/// on one or more snapshot-loaded shards. This is `lash_served`'s default
/// personality.
///
/// Handle() never blocks the event loop: a mine request is Submitted to the
/// service (whose executor owns the long work) and parked on an in-flight
/// list; the service's post_resolve_hook fires DrainReady(), which moves
/// every resolved request off the list, serializes its answer — patterns
/// decoded to item names in canonical wire order — and fires the Reply,
/// which wakes the epoll loop. Stats and metrics requests answer
/// synchronously; v2 mine requests carry a trace context that flows into
/// the service's serve.* spans unchanged.
class ServiceBackend : public Backend {
 public:
  /// Borrows the shards (which must outlive the backend). `options` are
  /// forwarded to the MiningService; its post_resolve_hook is overwritten —
  /// it is this backend's delivery mechanism.
  ServiceBackend(std::vector<const Dataset*> shards,
                 serve::ServiceOptions options = {});

  void Handle(std::string_view payload, Reply reply) override;
  size_t InFlight() const override;

  serve::MiningService& service() { return *service_; }

 private:
  struct Pending {
    serve::PendingResult result;
    serve::TaskSpec spec;
    Reply reply;
  };

  /// Moves every resolved in-flight request off the list and replies.
  void DrainReady();

  /// Serializes one resolved request into its reply payload.
  std::string BuildReplyPayload(const Pending& pending);

  std::vector<const Dataset*> shards_;

  mutable std::mutex mu_;
  std::list<Pending> inflight_;

  /// Declared last: destroyed first, so the executor drains (resolving
  /// every pending request, each firing the hook into DrainReady) while
  /// the in-flight list and shards are still alive.
  std::unique_ptr<serve::MiningService> service_;
};

}  // namespace lash::net

#endif  // LASH_NET_SERVICE_BACKEND_H_
