#ifndef LASH_NET_SERVICE_BACKEND_H_
#define LASH_NET_SERVICE_BACKEND_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "api/lash_api.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/mining_service.h"
#include "util/thread_pool.h"

namespace lash::net {

/// The worker backend: serves the framed wire protocol over a MiningService
/// on one or more snapshot-loaded shards. This is `lash_served`'s default
/// personality.
///
/// Handle() never blocks the event loop: a mine request is Submitted to the
/// service (whose executor owns the long work) and parked on an in-flight
/// list; the service's post_resolve_hook fires DrainReady(), which moves
/// every resolved request off the list, serializes its answer — patterns
/// decoded to item names in canonical wire order — and fires the Reply,
/// which wakes the epoll loop. A count request (phase 2 of the router's
/// two-phase protocol) is likewise handed off — to a backend-owned counting
/// pool that parallelizes over candidates (serve/support_count.h) and fires
/// the Reply from a pool thread. Stats and metrics requests answer
/// synchronously; v2/v3 mine requests carry a trace context that flows into
/// the service's serve.* spans unchanged.
class ServiceBackend : public Backend {
 public:
  /// Borrows the shards (which must outlive the backend). `options` are
  /// forwarded to the MiningService; its post_resolve_hook is overwritten —
  /// it is this backend's delivery mechanism.
  ServiceBackend(std::vector<const Dataset*> shards,
                 serve::ServiceOptions options = {});

  void Handle(std::string_view payload, Reply reply) override;
  size_t InFlight() const override;

  serve::MiningService& service() { return *service_; }

 private:
  struct Pending {
    serve::PendingResult result;
    serve::TaskSpec spec;
    Reply reply;
  };

  /// Moves every resolved in-flight request off the list and replies.
  void DrainReady();

  /// Serializes one resolved request into its reply payload.
  std::string BuildReplyPayload(const Pending& pending);

  /// Runs on a counting-pool thread: exact per-candidate supports via
  /// serve::CountSupports, parallelized over candidates with the pool's
  /// ParallelFor (safe from inside a pool task — the calling thread
  /// participates). The deadline is checked between candidates.
  void RunCount(const CountRequest& request, const Reply& reply);

  std::vector<const Dataset*> shards_;

  mutable std::mutex mu_;
  std::list<Pending> inflight_;

  /// Count requests handed off but not yet replied (part of InFlight so a
  /// draining server keeps its loop alive until the reply fires).
  std::atomic<size_t> counts_inflight_{0};
  /// Requests counter, registered iff the caller supplied a shared metrics
  /// registry (the service's own registry is private to it).
  obs::Counter* count_requests_ = nullptr;

  /// Declared last: destroyed first, in reverse order — the counting pool
  /// drains its count tasks, then the service's executor drains (resolving
  /// every pending mine, each firing the hook into DrainReady) — all while
  /// the in-flight list and shards are still alive.
  std::unique_ptr<serve::MiningService> service_;
  std::unique_ptr<ThreadPool> count_pool_;
};

}  // namespace lash::net

#endif  // LASH_NET_SERVICE_BACKEND_H_
