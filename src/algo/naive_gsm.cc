#include "algo/naive_gsm.h"

#include <atomic>
#include <mutex>

#include "miner/enumerate.h"
#include "util/varint.h"

namespace lash {

AlgoResult RunNaiveGsm(const PreprocessResult& pre, const GsmParams& params,
                       const JobConfig& config, const BaselineLimits& limits) {
  params.Validate();
  const Hierarchy& h = pre.hierarchy;
  AlgoResult result;
  std::atomic<uint64_t> emitted{0};
  std::atomic<bool> aborted{false};

  std::vector<PatternMap> outputs(std::max<size_t>(1, config.num_reduce_tasks));

  using Job = MapReduceJob<SequenceView, Sequence, Frequency, SequenceHash>;
  Job job(
      // Map: enumerate G_λ(T), deduplicated per transaction.
      [&](SequenceView t, const Job::EmitFn& emit) {
        if (aborted.load(std::memory_order_relaxed)) return;
        SequenceSet subsequences;
        EnumerateGeneralizedSubsequences(t, h, params.gamma, params.lambda,
                                         &subsequences);
        if (emitted.fetch_add(subsequences.size(),
                              std::memory_order_relaxed) >
            limits.max_emitted_records) {
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
        for (const Sequence& s : subsequences) emit(s, 1);
      },
      // Reduce: sum and filter by sigma.
      [&](size_t rtask, const Sequence& key, std::vector<Frequency>& values) {
        Frequency total = 0;
        for (Frequency v : values) total += v;
        if (total >= params.sigma) outputs[rtask].emplace(key, total);
      },
      // MAP_OUTPUT_BYTES: varint-encoded sequence + count.
      [](const Sequence& key, const Frequency& value) {
        return EncodedSequenceSize(key) + Varint64Size(value);
      });
  job.set_combiner([](Frequency* acc, Frequency&& incoming) { *acc += incoming; });

  result.job = job.Run(pre.database, config);
  result.aborted = aborted.load();
  for (PatternMap& part : outputs) {
    result.patterns.merge(part);
  }
  return result;
}

}  // namespace lash
