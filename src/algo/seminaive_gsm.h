#ifndef LASH_ALGO_SEMINAIVE_GSM_H_
#define LASH_ALGO_SEMINAIVE_GSM_H_

#include "algo/algo.h"

namespace lash {

/// The semi-naive distributed baseline (Sec. 3.3).
///
/// Uses the generalized f-list to prune: each item of an input sequence is
/// first generalized to its closest frequent ancestor (or replaced by a
/// blank if none exists); only blank-free generalized subsequences of the
/// pruned sequence are emitted. Correct by support monotonicity (Lemma 1).
/// Reduces to the naive algorithm when every item is frequent.
AlgoResult RunSemiNaiveGsm(const PreprocessResult& pre, const GsmParams& params,
                           const JobConfig& config,
                           const BaselineLimits& limits = {});

}  // namespace lash

#endif  // LASH_ALGO_SEMINAIVE_GSM_H_
