#ifndef LASH_ALGO_LASH_H_
#define LASH_ALGO_LASH_H_

#include "algo/algo.h"

namespace lash {

/// How much of the Sec. 4 rewrite machinery to apply when constructing
/// P_w(T). Used by the rewrite ablation bench; every level is correct
/// (w-equivalent), they differ only in partition size.
enum class RewriteLevel {
  /// P_w(T) = T — the paper's "simple and correct approach" (Sec. 3.4).
  kNone,
  /// w-generalization only (Sec. 4.2).
  kGeneralizeOnly,
  /// Full pipeline: w-generalization + unreachability reduction +
  /// isolated-pivot removal + blank compression (default).
  kFull,
};

/// Options of a LASH run.
struct LashOptions {
  /// Local mining algorithm run per partition (Sec. 5). PSM+Index is the
  /// paper's best-performing configuration and the default.
  MinerKind miner = MinerKind::kPsmIndex;
  /// Rewrite aggressiveness (ablation knob; keep kFull for production).
  RewriteLevel rewrite = RewriteLevel::kFull;
  /// Whether the map-side combiner aggregates identical rewrites
  /// (Sec. 4.4). Disabled only by the aggregation ablation.
  bool use_combiner = true;
};

/// LASH (Sec. 3.4, Alg. 1): hierarchy-aware item-based partitioning.
///
/// Map: for every input sequence T and every frequent item w ∈ G1(T),
/// construct the rewritten sequence P_w(T) (w-generalization +
/// unreachability reduction + isolated-pivot removal + blank compression,
/// Sec. 4) and emit it keyed by (w, P_w(T)). The combiner and the shuffle
/// aggregate identical rewrites into weights (Sec. 4.4).
///
/// Reduce: partitions are routed by pivot (custom partitioner); once a
/// reduce task has aggregated all sequences of its pivots, it runs the
/// configured local miner on each partition P_w, emitting exactly the
/// frequent pivot sequences G_{σ,γ,λ}(w, P_w). Correctness follows from
/// w-equivalency (Lemma 2): f_γ(S, D) = f_γ(S, P_w) for p(S) = w.
AlgoResult RunLash(const PreprocessResult& pre, const GsmParams& params,
                   const JobConfig& config, const LashOptions& options = {});

}  // namespace lash

#endif  // LASH_ALGO_LASH_H_
