#ifndef LASH_ALGO_ALGO_H_
#define LASH_ALGO_ALGO_H_

#include <algorithm>

#include "core/flist.h"
#include "core/params.h"
#include "mapreduce/job.h"
#include "miner/miner.h"
#include "util/hash.h"

namespace lash {

/// Partition shape accounting for LASH runs: how evenly the rewrites spread
/// the data over pivots. Skew is shortcoming (1) the rewrites address
/// (Sec. 4) — one oversized partition bounds the reduce makespan no matter
/// how many nodes exist.
struct PartitionShape {
  size_t partitions = 0;           ///< Partitions actually materialized.
  uint64_t total_sequences = 0;    ///< Aggregated sequences over partitions.
  uint64_t max_partition = 0;      ///< Largest partition (sequences).

  /// max/mean partition size; 1.0 is perfectly balanced.
  double SkewFactor() const {
    if (partitions == 0 || total_sequences == 0) return 0;
    double mean = static_cast<double>(total_sequences) /
                  static_cast<double>(partitions);
    return static_cast<double>(max_partition) / mean;
  }

  void Merge(const PartitionShape& other) {
    partitions += other.partitions;
    total_sequences += other.total_sequences;
    max_partition = std::max(max_partition, other.max_partition);
  }
};

/// Result of one distributed GSM run: the mined patterns (in rank-id space)
/// plus the MapReduce bookkeeping the paper's experiments report.
struct AlgoResult {
  PatternMap patterns;
  JobResult job;
  MinerStats miner_stats;  ///< Filled by LASH/MG-FSM (local mining accounting).
  PartitionShape partition_shape;  ///< Filled by LASH/MG-FSM.
  bool aborted = false;    ///< True if an emit cap stopped the run ("DNF").
};

/// Safety valve for the (semi-)naive baselines, which can be exponential:
/// once a job emits more than this many intermediate records it stops
/// emitting and flags `aborted` — the analogue of the paper's ">12 hours,
/// aborted" entries in Fig. 4(a).
struct BaselineLimits {
  uint64_t max_emitted_records = 200'000'000;
};

/// Runs the preprocessing phase (Sec. 3.3/3.4) as a MapReduce job: computes
/// the generalized f-list over `raw_db`, derives the total order, and recodes
/// database and hierarchy into rank space. `job_out`, if non-null, receives
/// the f-list job's timings/counters.
PreprocessResult PreprocessWithJob(const FlatDatabase& raw_db,
                                   const Hierarchy& raw_h,
                                   const JobConfig& config,
                                   JobResult* job_out = nullptr);

/// Legacy-form convenience overload.
inline PreprocessResult PreprocessWithJob(const Database& raw_db,
                                          const Hierarchy& raw_h,
                                          const JobConfig& config,
                                          JobResult* job_out = nullptr) {
  return PreprocessWithJob(FlatDatabase::FromDatabase(raw_db), raw_h, config,
                           job_out);
}

}  // namespace lash

#endif  // LASH_ALGO_ALGO_H_
