#ifndef LASH_ALGO_NAIVE_GSM_H_
#define LASH_ALGO_NAIVE_GSM_H_

#include "algo/algo.h"

namespace lash {

/// The naive distributed baseline (Sec. 3.2): "word counting" over all
/// generalized subsequences.
///
/// Map: for every input sequence T emit each S ∈ G_λ(T) with count 1
/// (deduplicated per transaction — frequencies are document frequencies).
/// Combine/Reduce: sum counts, keep S with f ≥ σ. The output size per input
/// sequence is O(l^λ δ^λ) for γ=0 and O((δ+1)^l) for unconstrained gaps,
/// which is why this baseline blows up on deep hierarchies (Fig. 4(a)).
AlgoResult RunNaiveGsm(const PreprocessResult& pre, const GsmParams& params,
                       const JobConfig& config,
                       const BaselineLimits& limits = {});

}  // namespace lash

#endif  // LASH_ALGO_NAIVE_GSM_H_
