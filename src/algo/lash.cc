#include "algo/lash.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/rewrite.h"
#include "util/varint.h"

namespace lash {

AlgoResult RunLash(const PreprocessResult& pre, const GsmParams& params,
                   const JobConfig& config, const LashOptions& options) {
  params.Validate();
  const Hierarchy& h = pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));
  const size_t num_red = std::max<size_t>(1, config.num_reduce_tasks);
  Rewriter rewriter(&h, params.gamma, params.lambda);

  AlgoResult result;
  // Per reduce task: partitions under construction, outputs, miner stats.
  std::vector<std::map<ItemId, Partition>> partitions(num_red);
  std::vector<PatternMap> outputs(num_red);
  std::vector<MinerStats> stats(num_red);
  std::vector<PartitionShape> shapes(num_red);

  // Intermediate key: [pivot, rewritten sequence...]. The partitioner routes
  // by pivot so that a reduce task sees every sequence of its pivots; the
  // full-key hash keeps in-memory grouping and combining efficient.
  using Job = MapReduceJob<Sequence, Sequence, Frequency, SequenceHash>;
  Job job(
      // Map = partitioning phase (Alg. 1 lines 1-5).
      [&](const Sequence& t, const Job::EmitFn& emit) {
        // G1(T) restricted to frequent items: walk each item's ancestor
        // chain; dedup via sort at the end (chains are short).
        Sequence pivots;
        for (ItemId w : t) {
          for (ItemId a : h.AncestorSpan(w)) {
            if (a <= num_frequent) pivots.push_back(a);
            // Ancestors of an already-seen item repeat; the sort+unique
            // below removes them.
          }
        }
        std::sort(pivots.begin(), pivots.end());
        pivots.erase(std::unique(pivots.begin(), pivots.end()), pivots.end());
        Sequence key;
        for (ItemId w : pivots) {
          Sequence rewritten;
          switch (options.rewrite) {
            case RewriteLevel::kNone:
              rewritten = t;
              break;
            case RewriteLevel::kGeneralizeOnly:
              rewritten = rewriter.Generalize(t, w);
              break;
            case RewriteLevel::kFull:
              rewritten = rewriter.Rewrite(t, w);
              break;
          }
          if (rewritten.empty()) continue;
          key.clear();
          key.reserve(rewritten.size() + 1);
          key.push_back(w);
          key.insert(key.end(), rewritten.begin(), rewritten.end());
          emit(key, 1);
        }
      },
      // Reduce = aggregation of identical rewrites (Sec. 4.4); mining runs
      // in the reduce-finish hook once the partition is complete.
      [&](size_t rtask, const Sequence& key, std::vector<Frequency>& values) {
        Frequency total = 0;
        for (Frequency v : values) total += v;
        Sequence sequence(key.begin() + 1, key.end());
        partitions[rtask][key[0]].Add(std::move(sequence), total);
      },
      // MAP_OUTPUT_BYTES: pivot + blank-run-compressed sequence + weight.
      [](const Sequence& key, const Frequency& value) {
        Sequence sequence(key.begin() + 1, key.end());
        return Varint32Size(key[0]) + EncodedRewrittenSequenceSize(sequence) +
               Varint64Size(value);
      });
  if (options.use_combiner) {
    job.set_combiner(
        [](Frequency* acc, Frequency&& incoming) { *acc += incoming; });
  }
  job.set_partitioner([](const Sequence& key) {
    return static_cast<size_t>(key[0]);
  });
  job.set_reduce_finish([&](size_t rtask) {
    // Mining phase (Alg. 1 lines 7-11): one local miner per task.
    auto miner = MakeLocalMiner(options.miner, &h, params);
    for (auto& [pivot, partition] : partitions[rtask]) {
      shapes[rtask].partitions += 1;
      shapes[rtask].total_sequences += partition.size();
      shapes[rtask].max_partition =
          std::max<uint64_t>(shapes[rtask].max_partition, partition.size());
      PatternMap mined = miner->Mine(partition, pivot, &stats[rtask]);
      outputs[rtask].merge(mined);
    }
    partitions[rtask].clear();
  });

  result.job = job.Run(pre.database, config);
  for (PatternMap& part : outputs) result.patterns.merge(part);
  for (const MinerStats& s : stats) result.miner_stats.Merge(s);
  for (const PartitionShape& s : shapes) result.partition_shape.Merge(s);
  return result;
}

}  // namespace lash
