#include "algo/lash.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <utility>

#include "core/rewrite.h"
#include "util/varint.h"

namespace lash {

namespace {

// Collects G1(T) restricted to frequent items into `*pivots` (cleared):
// walk each item's ancestor chain, dedup via sort (chains are short).
void CollectFrequentPivots(SequenceView t, const Hierarchy& h,
                           ItemId num_frequent, Sequence* pivots) {
  pivots->clear();
  for (ItemId w : t) {
    for (ItemId a : h.AncestorSpan(w)) {
      if (a <= num_frequent) pivots->push_back(a);
      // Ancestors of an already-seen item repeat; the sort+unique below
      // removes them.
    }
  }
  std::sort(pivots->begin(), pivots->end());
  pivots->erase(std::unique(pivots->begin(), pivots->end()), pivots->end());
}

// The packed-spill LASH driver. Per worker thread: one ScratchRewriter and
// reusable pivot/rewrite/key buffers, so the map phase performs no
// steady-state heap allocation. Per reduce task: partitions accumulate in a
// flat vector (slot index per pivot) and reduce_finish mines them pivot-
// sorted, in parallel over pivots on the job's own pool.
AlgoResult RunLashPacked(const PreprocessResult& pre, const GsmParams& params,
                         const JobConfig& config, const LashOptions& options) {
  const Hierarchy& h = pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));
  const size_t num_red = std::max<size_t>(1, config.num_reduce_tasks);
  const size_t num_threads = std::max<size_t>(1, config.num_threads);

  // Per-worker map-side scratch, indexed by ThreadPool::CurrentIndex().
  // Map tasks always run on pool workers, so the index is always valid.
  struct MapScratch {
    std::unique_ptr<ScratchRewriter> rewriter;
    Sequence pivots;
    Sequence rewritten;
    Sequence key;
  };
  std::vector<MapScratch> map_scratch(num_threads);

  // Per reduce task: flat partitions (one slot per pivot seen) plus a
  // slot directory. With the packed shuffle keys arrive grouped by
  // (hash, bytes), not by pivot, so the directory does the routing; the
  // pivot-sorted order is established once in reduce_finish.
  struct ReduceState {
    std::vector<ItemId> pivots;
    std::vector<Partition> partitions;
    std::unordered_map<ItemId, uint32_t> slot_of_pivot;
  };
  std::vector<ReduceState> reduce_state(num_red);
  std::vector<PatternMap> outputs(num_red);
  std::vector<MinerStats> stats(num_red);
  std::vector<PartitionShape> shapes(num_red);

  AlgoResult result;
  // Intermediate key: [pivot, rewritten sequence...]. The partitioner routes
  // by pivot so that a reduce task sees every sequence of its pivots. The
  // input is the flat corpus: map tasks stream SequenceViews out of one
  // contiguous arena.
  using Job = MapReduceJob<SequenceView, Sequence, Frequency, SequenceHash>;
  Job job(
      // Map = partitioning phase (Alg. 1 lines 1-5).
      [&](SequenceView t, const Job::EmitFn& emit) {
        MapScratch& scratch = map_scratch[ThreadPool::CurrentIndex()];
        if (!scratch.rewriter) {
          scratch.rewriter = std::make_unique<ScratchRewriter>(
              &h, params.gamma, params.lambda);
        }
        if (options.rewrite == RewriteLevel::kFull) {
          // Occurrence-driven fused loop: every pivot's key in one chain
          // walk, each pivot rewriting only the bounded neighborhood of
          // its occurrences (run walk for gamma == 0, merged
          // (lambda-1)*(gamma+1) windows with the interval DP otherwise).
          scratch.rewriter->RewriteAllPivots(
              t, num_frequent, [&](const Sequence& key) { emit(key, 1); });
          return;
        }
        CollectFrequentPivots(t, h, num_frequent, &scratch.pivots);
        // P_w(T) = T is pivot-independent; copy once, not per pivot.
        if (options.rewrite == RewriteLevel::kNone) {
          scratch.rewritten.assign(t.begin(), t.end());
        }
        for (ItemId w : scratch.pivots) {
          switch (options.rewrite) {
            case RewriteLevel::kNone:
              break;
            case RewriteLevel::kGeneralizeOnly:
              scratch.rewriter->Generalize(t, w, &scratch.rewritten);
              break;
            case RewriteLevel::kFull:
              if (!scratch.rewriter->Rewrite(t, w, &scratch.rewritten)) {
                continue;
              }
              break;
          }
          if (scratch.rewritten.empty()) continue;
          scratch.key.clear();
          scratch.key.reserve(scratch.rewritten.size() + 1);
          scratch.key.push_back(w);
          scratch.key.insert(scratch.key.end(), scratch.rewritten.begin(),
                             scratch.rewritten.end());
          emit(scratch.key, 1);
        }
      },
      // Reduce = aggregation of identical rewrites (Sec. 4.4); mining runs
      // in the reduce-finish hook once the partition is complete.
      [&](size_t rtask, const Sequence& key, std::vector<Frequency>& values) {
        Frequency total = 0;
        for (Frequency v : values) total += v;
        ReduceState& state = reduce_state[rtask];
        const ItemId pivot = key[0];
        auto [it, inserted] = state.slot_of_pivot.try_emplace(
            pivot, static_cast<uint32_t>(state.pivots.size()));
        if (inserted) {
          state.pivots.push_back(pivot);
          state.partitions.emplace_back();
        }
        state.partitions[it->second].Add(
            SequenceView(key.data() + 1, key.size() - 1), total);
      },
      // Legacy-path byte accounting; unused when the packed spill is active
      // (real buffer bytes are counted instead) but kept in sync with the
      // codec so a fallback reports identical MAP_OUTPUT_BYTES.
      [](const Sequence& key, const Frequency& value) {
        return Varint32Size(key[0]) +
               EncodedRewrittenSpanSize(key.data() + 1, key.size() - 1) +
               Varint64Size(value);
      });
  if (options.use_combiner) {
    job.set_combiner(
        [](Frequency* acc, Frequency&& incoming) { *acc += incoming; });
  }
  job.set_partitioner([](const Sequence& key) {
    return static_cast<size_t>(key[0]);
  });
  // Spill codec: varint pivot + blank-run-compressed rewritten sequence +
  // varint weight — the exact byte format the paper's MAP_OUTPUT_BYTES
  // simulation assumed, now actually materialized.
  Job::SpillCodec codec;
  codec.encode_key = [](std::string* out, const Sequence& key) {
    PutVarint32(out, key[0]);
    EncodeRewrittenSpan(out, key.data() + 1, key.size() - 1);
  };
  codec.decode_key = [](const std::string& data, size_t* pos, Sequence* key) {
    uint32_t pivot = 0;
    if (!GetVarint32(data, pos, &pivot)) return false;
    key->clear();
    key->push_back(pivot);
    return DecodeRewrittenSpanAppend(data, pos, key);
  };
  codec.encode_value = [](std::string* out, const Frequency& value) {
    PutVarint64(out, value);
  };
  codec.decode_value = [](const std::string& data, size_t* pos,
                          Frequency* value) {
    return GetVarint64(data, pos, value);
  };
  codec.skip_key = [](const std::string& data, size_t* pos) {
    uint32_t pivot = 0;
    return GetVarint32(data, pos, &pivot) && SkipRewrittenSpan(data, pos);
  };
  job.set_spill_codec(std::move(codec));

  job.set_reduce_finish([&](size_t rtask, ThreadPool* pool) {
    // Mining phase (Alg. 1 lines 7-11), parallel over pivots. Pivot
    // outputs are disjoint (every pattern names its pivot as max item),
    // so per-worker maps merge to the same result in any order — the same
    // argument MineSequential relies on.
    ReduceState& state = reduce_state[rtask];
    const size_t n = state.pivots.size();
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return state.pivots[a] < state.pivots[b];
    });
    for (const Partition& partition : state.partitions) {
      shapes[rtask].partitions += 1;
      shapes[rtask].total_sequences += partition.size();
      shapes[rtask].max_partition =
          std::max<uint64_t>(shapes[rtask].max_partition, partition.size());
    }
    struct WorkerState {
      std::unique_ptr<LocalMiner> miner;
      PatternMap output;
      MinerStats stats;
    };
    // Indexed by pool worker; ParallelFor bodies of one call never share a
    // worker thread concurrently, so the slots are race-free.
    std::vector<WorkerState> workers(num_threads);
    pool->ParallelFor(n, [&](size_t i) {
      WorkerState& ws = workers[ThreadPool::CurrentIndex()];
      if (!ws.miner) ws.miner = MakeLocalMiner(options.miner, &h, params);
      const uint32_t slot = order[i];
      PatternMap mined = ws.miner->Mine(state.partitions[slot],
                                        state.pivots[slot], &ws.stats);
      ws.output.merge(mined);
    });
    for (WorkerState& ws : workers) {
      outputs[rtask].merge(ws.output);
      stats[rtask].Merge(ws.stats);
    }
    state = ReduceState{};
  });

  result.job = job.Run(pre.database, config);
  for (PatternMap& part : outputs) result.patterns.merge(part);
  for (const MinerStats& s : stats) result.miner_stats.Merge(s);
  for (const PartitionShape& s : shapes) result.partition_shape.Merge(s);
  return result;
}

// The pre-PR2 driver, verbatim: per-emit key allocation, simulated
// MAP_OUTPUT_BYTES, std::map partitions, serial mining per reduce task.
// It is the before-baseline of bench_shuffle (selected via
// JobConfig::shuffle == ShuffleMode::kLegacyHash); do not optimize it.
// `db` is the rank-space corpus materialized back into the owning
// vector-of-vectors form the seed driver ran on (one heap vector per
// transaction), so the map phase measures exactly its original costs.
// Reduce-side partition storage and the local miners are deliberately the
// *shared production* CSR code on both paths (identical on the packed side
// too), so the packed-vs-legacy comparison isolates the shuffle machinery
// itself rather than mixing in partition-storage differences.
AlgoResult RunLashLegacy(const Database& db, const PreprocessResult& pre,
                         const GsmParams& params, const JobConfig& config,
                         const LashOptions& options) {
  const Hierarchy& h = pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));
  const size_t num_red = std::max<size_t>(1, config.num_reduce_tasks);
  Rewriter rewriter(&h, params.gamma, params.lambda);

  AlgoResult result;
  // Per reduce task: partitions under construction, outputs, miner stats.
  std::vector<std::map<ItemId, Partition>> partitions(num_red);
  std::vector<PatternMap> outputs(num_red);
  std::vector<MinerStats> stats(num_red);
  std::vector<PartitionShape> shapes(num_red);

  using Job = MapReduceJob<Sequence, Sequence, Frequency, SequenceHash>;
  Job job(
      [&](const Sequence& t, const Job::EmitFn& emit) {
        Sequence pivots;
        for (ItemId w : t) {
          for (ItemId a : h.AncestorSpan(w)) {
            if (a <= num_frequent) pivots.push_back(a);
          }
        }
        std::sort(pivots.begin(), pivots.end());
        pivots.erase(std::unique(pivots.begin(), pivots.end()), pivots.end());
        Sequence key;
        for (ItemId w : pivots) {
          Sequence rewritten;
          switch (options.rewrite) {
            case RewriteLevel::kNone:
              rewritten = t;
              break;
            case RewriteLevel::kGeneralizeOnly:
              rewritten = rewriter.Generalize(t, w);
              break;
            case RewriteLevel::kFull:
              rewritten = rewriter.Rewrite(t, w);
              break;
          }
          if (rewritten.empty()) continue;
          key.clear();
          key.reserve(rewritten.size() + 1);
          key.push_back(w);
          key.insert(key.end(), rewritten.begin(), rewritten.end());
          emit(key, 1);
        }
      },
      [&](size_t rtask, const Sequence& key, std::vector<Frequency>& values) {
        Frequency total = 0;
        for (Frequency v : values) total += v;
        partitions[rtask][key[0]].Add(
            SequenceView(key.data() + 1, key.size() - 1), total);
      },
      // MAP_OUTPUT_BYTES: pivot + blank-run-compressed sequence + weight.
      [](const Sequence& key, const Frequency& value) {
        Sequence sequence(key.begin() + 1, key.end());
        return Varint32Size(key[0]) + EncodedRewrittenSequenceSize(sequence) +
               Varint64Size(value);
      });
  if (options.use_combiner) {
    job.set_combiner(
        [](Frequency* acc, Frequency&& incoming) { *acc += incoming; });
  }
  job.set_partitioner([](const Sequence& key) {
    return static_cast<size_t>(key[0]);
  });
  job.set_reduce_finish([&](size_t rtask, ThreadPool*) {
    // Mining phase (Alg. 1 lines 7-11): one local miner per task.
    auto miner = MakeLocalMiner(options.miner, &h, params);
    for (auto& [pivot, partition] : partitions[rtask]) {
      shapes[rtask].partitions += 1;
      shapes[rtask].total_sequences += partition.size();
      shapes[rtask].max_partition =
          std::max<uint64_t>(shapes[rtask].max_partition, partition.size());
      PatternMap mined = miner->Mine(partition, pivot, &stats[rtask]);
      outputs[rtask].merge(mined);
    }
    partitions[rtask].clear();
  });

  result.job = job.Run(db, config);
  for (PatternMap& part : outputs) result.patterns.merge(part);
  for (const MinerStats& s : stats) result.miner_stats.Merge(s);
  for (const PartitionShape& s : shapes) result.partition_shape.Merge(s);
  return result;
}

}  // namespace

AlgoResult RunLash(const PreprocessResult& pre, const GsmParams& params,
                   const JobConfig& config, const LashOptions& options) {
  params.Validate();
  if (config.shuffle == ShuffleMode::kLegacyHash) {
    // Materialize the owning-vectors corpus the seed driver ran on. This
    // happens before the job starts, so the reported phase times measure
    // the legacy path itself, not the conversion.
    Database legacy_db = pre.database.Materialize();
    return RunLashLegacy(legacy_db, pre, params, config, options);
  }
  return RunLashPacked(pre, params, config, options);
}

}  // namespace lash
