#ifndef LASH_ALGO_SEQUENTIAL_H_
#define LASH_ALGO_SEQUENTIAL_H_

#include "core/flist.h"
#include "core/params.h"
#include "miner/miner.h"
#include "util/hash.h"

namespace lash {

/// Single-node GSM without the MapReduce substrate: the partition/mine
/// pipeline of LASH executed in-process, partition by partition.
///
/// This is the entry point for library users who just want the algorithm —
/// e.g. to embed hierarchy-aware sequence mining inside another system —
/// and it is what the paper calls running the "customized GSM algorithm"
/// directly (Sec. 5). Memory never holds more than one partition.
///
/// `pre` must come from Preprocess()/PreprocessWithJob(). Returns patterns
/// in rank-id space with their frequencies; `stats`, if non-null, receives
/// the local miners' search-space accounting.
PatternMap MineSequential(const PreprocessResult& pre, const GsmParams& params,
                          MinerKind miner = MinerKind::kPsmIndex,
                          MinerStats* stats = nullptr);

}  // namespace lash

#endif  // LASH_ALGO_SEQUENTIAL_H_
