#ifndef LASH_ALGO_SEQUENTIAL_H_
#define LASH_ALGO_SEQUENTIAL_H_

#include <cstddef>

#include "core/flist.h"
#include "core/params.h"
#include "miner/miner.h"
#include "util/hash.h"

namespace lash {

/// Single-node GSM without the MapReduce substrate: the partition/mine
/// pipeline of LASH executed in-process, partition by partition.
///
/// This is the entry point for library users who just want the algorithm —
/// e.g. to embed hierarchy-aware sequence mining inside another system —
/// and it is what the paper calls running the "customized GSM algorithm"
/// directly (Sec. 5). Memory never holds more than one partition per
/// worker.
///
/// Pivots are independent, so partitions are mined in parallel on a
/// ThreadPool: `num_threads` workers claim pivots from a shared atomic
/// counter, each mines into its own PatternMap with its own Rewriter and
/// local miner, and the per-worker maps are merged at the end (pivot
/// outputs are disjoint, so the result is identical to a serial run).
/// `num_threads == 0` (the default) uses the hardware concurrency;
/// `num_threads == 1` runs inline without spawning workers.
///
/// `pre` must come from Preprocess()/PreprocessWithJob(). Returns patterns
/// in rank-id space with their frequencies; `stats`, if non-null, receives
/// the local miners' search-space accounting.
PatternMap MineSequential(const PreprocessResult& pre, const GsmParams& params,
                          MinerKind miner = MinerKind::kPsmIndex,
                          MinerStats* stats = nullptr, size_t num_threads = 0);

class Rewriter;

/// One pass over the data builds the pivot -> transactions index: for every
/// frequent pivot w, the tids whose transaction contains w or a descendant
/// (the frequent part of G1(T) per transaction, Sec. 3.3). Shared by
/// MineSequential and the hot-path bench so both partition identically.
std::vector<std::vector<uint32_t>> BuildPivotIndex(const PreprocessResult& pre,
                                                   ItemId num_frequent);

/// Builds the aggregated partition P_w of one pivot: rewrites the relevant
/// transactions and merges identical rewrites with weights (Sec. 4.4).
/// Returns an empty partition if no rewrite survives.
Partition BuildPivotPartition(const PreprocessResult& pre,
                              const Rewriter& rewriter, ItemId pivot,
                              const std::vector<uint32_t>& tids);

}  // namespace lash

#endif  // LASH_ALGO_SEQUENTIAL_H_
