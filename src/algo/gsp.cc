#include "algo/gsp.h"

#include <algorithm>

namespace lash {

namespace {

// An extended sequence: one sorted itemset (item + ancestors) per position.
using Itemset = std::vector<ItemId>;
using ExtendedSequence = std::vector<Itemset>;

// Enumerates, deduplicated, every length-k sequence S over frequent items
// such that S matches the extended sequence under the gap constraint and
// every element of S appears in `candidates`. Used for counting: GSP's
// hash-tree candidate matching realized as bounded enumeration + lookup.
class CandidateMatcher {
 public:
  CandidateMatcher(const ExtendedSequence& t, const PatternMap& candidates,
                   uint32_t gamma, size_t k, SequenceSet* found)
      : t_(t), candidates_(candidates), gamma_(gamma), k_(k), found_(found) {}

  void Run() {
    for (size_t i = 0; i < t_.size(); ++i) ExtendAt(i);
  }

 private:
  void ExtendAt(size_t i) {
    for (ItemId a : t_[i]) {
      current_.push_back(a);
      if (current_.size() == k_) {
        if (candidates_.contains(current_)) found_->insert(current_);
      } else {
        size_t hi = std::min(t_.size(), i + static_cast<size_t>(gamma_) + 2);
        for (size_t j = i + 1; j < hi; ++j) ExtendAt(j);
      }
      current_.pop_back();
    }
  }

  const ExtendedSequence& t_;
  const PatternMap& candidates_;
  uint32_t gamma_;
  size_t k_;
  SequenceSet* found_;
  Sequence current_;
};

}  // namespace

PatternMap RunGspExtended(const PreprocessResult& pre, const GsmParams& params,
                          GspStats* stats) {
  params.Validate();
  const Hierarchy& h = pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));

  // --- Materialize extended sequences, pruned to frequent items. ---
  // (Infrequent items cannot occur in any frequent pattern, Lemma 1; this
  // is the standard GSP optimization and keeps the blowup at delta, not
  // delta + junk.)
  std::vector<ExtendedSequence> extended;
  extended.reserve(pre.database.size());
  for (SequenceView t : pre.database) {
    ExtendedSequence e;
    e.reserve(t.size());
    for (ItemId w : t) {
      Itemset itemset;
      for (ItemId a : h.AncestorSpan(w)) {
        if (a <= num_frequent) itemset.push_back(a);
      }
      std::sort(itemset.begin(), itemset.end());
      if (stats != nullptr) stats->extended_items += itemset.size();
      e.push_back(std::move(itemset));  // Possibly empty (acts as a blank).
    }
    extended.push_back(std::move(e));
  }

  // --- Level 2 candidates: all ordered pairs of frequent items. ---
  PatternMap candidates;
  for (ItemId a = 1; a <= num_frequent; ++a) {
    for (ItemId b = 1; b <= num_frequent; ++b) {
      candidates.emplace(Sequence{a, b}, 0);
    }
  }
  if (stats != nullptr) stats->candidates += candidates.size();

  PatternMap output;
  SequenceSet found;
  for (uint32_t k = 2; k <= params.lambda && !candidates.empty(); ++k) {
    // Count candidates with one full scan of the extended database.
    if (stats != nullptr) ++stats->database_scans;
    for (const ExtendedSequence& t : extended) {
      found.clear();
      CandidateMatcher(t, candidates, params.gamma, k, &found).Run();
      for (const Sequence& s : found) ++candidates.at(s);
    }
    // Keep the frequent ones.
    PatternMap frequent_k;
    for (auto& [seq, freq] : candidates) {
      if (freq >= params.sigma) frequent_k.emplace(seq, freq);
    }
    output.insert(frequent_k.begin(), frequent_k.end());
    if (k == params.lambda) break;
    // Generate k+1 candidates by prefix/suffix join over frequent k-seqs.
    std::unordered_map<Sequence, std::vector<ItemId>, SequenceHash> by_prefix;
    for (const auto& [seq, freq] : frequent_k) {
      by_prefix[Sequence(seq.begin(), seq.end() - 1)].push_back(seq.back());
    }
    PatternMap next;
    for (const auto& [seq, freq] : frequent_k) {
      Sequence suffix(seq.begin() + 1, seq.end());
      auto it = by_prefix.find(suffix);
      if (it == by_prefix.end()) continue;
      for (ItemId x : it->second) {
        Sequence candidate = seq;
        candidate.push_back(x);
        next.emplace(std::move(candidate), 0);
      }
    }
    if (stats != nullptr) stats->candidates += next.size();
    candidates = std::move(next);
  }
  return output;
}

}  // namespace lash
