#include "algo/sequential.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rewrite.h"
#include "util/thread_pool.h"

namespace lash {

std::vector<std::vector<uint32_t>> BuildPivotIndex(const PreprocessResult& pre,
                                                   ItemId num_frequent) {
  const Hierarchy& h = pre.hierarchy;
  std::vector<std::vector<uint32_t>> transactions_of_pivot(num_frequent + 1);
  std::vector<uint32_t> seen(num_frequent + 1, 0);
  uint32_t epoch = 0;
  for (uint32_t tid = 0; tid < pre.database.size(); ++tid) {
    ++epoch;
    for (ItemId w : pre.database[tid]) {
      for (ItemId a : h.AncestorSpan(w)) {
        if (a > num_frequent) continue;
        if (seen[a] == epoch) break;  // Whole chain above already seen.
        seen[a] = epoch;
        transactions_of_pivot[a].push_back(tid);
      }
    }
  }
  return transactions_of_pivot;
}

Partition BuildPivotPartition(const PreprocessResult& pre,
                              const Rewriter& rewriter, ItemId pivot,
                              const std::vector<uint32_t>& tids) {
  PatternMap aggregated;
  for (uint32_t tid : tids) {
    Sequence rewritten = rewriter.Rewrite(pre.database[tid], pivot);
    if (!rewritten.empty()) ++aggregated[rewritten];
  }
  Partition partition;
  for (auto& [seq, weight] : aggregated) {
    partition.Add(seq, weight);
  }
  return partition;
}

namespace {

// Mines one pivot's partition and merges the result into `output`; pivots
// are disjoint so no cross-pivot state is needed.
void MineOnePivot(const PreprocessResult& pre, const Rewriter& rewriter,
                  LocalMiner& miner, ItemId pivot,
                  const std::vector<uint32_t>& tids, PatternMap* output,
                  MinerStats* stats) {
  Partition partition = BuildPivotPartition(pre, rewriter, pivot, tids);
  if (partition.size() == 0) return;
  PatternMap mined = miner.Mine(partition, pivot, stats);
  output->merge(mined);
}

}  // namespace

PatternMap MineSequential(const PreprocessResult& pre, const GsmParams& params,
                          MinerKind miner_kind, MinerStats* stats,
                          size_t num_threads) {
  params.Validate();
  const Hierarchy& h = pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));
  // Constructed on the calling thread so invalid inputs (e.g. a
  // non-rank-monotone hierarchy) throw to the caller instead of inside a
  // pool worker, where an escaping exception would terminate the process.
  // Rewriter is stateless const, so the workers can all share it.
  Rewriter rewriter(&h, params.gamma, params.lambda);

  // Afterwards only the relevant transactions are rewritten per pivot and
  // memory never holds more than one partition per worker.
  std::vector<std::vector<uint32_t>> transactions_of_pivot =
      BuildPivotIndex(pre, num_frequent);

  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max<size_t>(1, std::min<size_t>(num_threads, num_frequent));

  if (num_threads == 1) {
    PatternMap output;
    auto miner = MakeLocalMiner(miner_kind, &h, params);
    for (ItemId pivot = 1; pivot <= num_frequent; ++pivot) {
      MineOnePivot(pre, rewriter, *miner, pivot, transactions_of_pivot[pivot],
                   &output, stats);
    }
    return output;
  }

  // Parallel pivot mining: workers claim pivots off an atomic counter
  // (cheap dynamic load balancing — partition sizes are heavily skewed
  // toward small pivots) and mine into per-worker maps.
  std::atomic<ItemId> next_pivot{1};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<PatternMap> outputs(num_threads);
  std::vector<MinerStats> worker_stats(num_threads);
  ThreadPool pool(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([&, w] {
      // An exception escaping a ThreadPool task terminates the process, so
      // capture and rethrow on the calling thread after Wait() — the same
      // contract the serial path (and callers) already have.
      try {
        auto miner = MakeLocalMiner(miner_kind, &h, params);
        MinerStats* worker = stats != nullptr ? &worker_stats[w] : nullptr;
        while (!failed.load(std::memory_order_relaxed)) {
          ItemId pivot = next_pivot.fetch_add(1, std::memory_order_relaxed);
          if (pivot > num_frequent) break;
          MineOnePivot(pre, rewriter, *miner, pivot,
                       transactions_of_pivot[pivot], &outputs[w], worker);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    });
  }
  pool.Wait();
  if (first_error) std::rethrow_exception(first_error);

  // Pivot outputs are disjoint (every pattern names its pivot as max item),
  // so merge order cannot change the result.
  PatternMap output;
  for (PatternMap& part : outputs) output.merge(part);
  if (stats != nullptr) {
    for (const MinerStats& s : worker_stats) stats->Merge(s);
  }
  return output;
}

}  // namespace lash
