#include "algo/sequential.h"

#include "core/rewrite.h"

namespace lash {

PatternMap MineSequential(const PreprocessResult& pre, const GsmParams& params,
                          MinerKind miner_kind, MinerStats* stats) {
  params.Validate();
  const Hierarchy& h = pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));
  Rewriter rewriter(&h, params.gamma, params.lambda);
  auto miner = MakeLocalMiner(miner_kind, &h, params);

  // One pass over the data builds the pivot -> transactions index (the
  // frequent part of G1(T) per transaction, Sec. 3.3); afterwards only the
  // relevant transactions are rewritten per pivot and memory never holds
  // more than one partition.
  std::vector<std::vector<uint32_t>> transactions_of_pivot(num_frequent + 1);
  {
    std::vector<uint32_t> seen(num_frequent + 1, 0);
    uint32_t epoch = 0;
    for (uint32_t tid = 0; tid < pre.database.size(); ++tid) {
      ++epoch;
      for (ItemId w : pre.database[tid]) {
        for (ItemId a = w; a != kInvalidItem; a = h.Parent(a)) {
          if (a > num_frequent) continue;
          if (seen[a] == epoch) break;  // Whole chain above already seen.
          seen[a] = epoch;
          transactions_of_pivot[a].push_back(tid);
        }
      }
    }
  }

  PatternMap output;
  for (ItemId pivot = 1; pivot <= num_frequent; ++pivot) {
    PatternMap aggregated;
    for (uint32_t tid : transactions_of_pivot[pivot]) {
      Sequence rewritten = rewriter.Rewrite(pre.database[tid], pivot);
      if (!rewritten.empty()) ++aggregated[rewritten];
    }
    if (aggregated.empty()) continue;
    Partition partition;
    for (auto& [seq, weight] : aggregated) {
      partition.Add(seq, weight);
    }
    PatternMap mined = miner->Mine(partition, pivot, stats);
    output.merge(mined);
  }
  return output;
}

}  // namespace lash
