#include "algo/seminaive_gsm.h"

#include <atomic>

#include "miner/enumerate.h"
#include "util/varint.h"

namespace lash {

AlgoResult RunSemiNaiveGsm(const PreprocessResult& pre, const GsmParams& params,
                           const JobConfig& config,
                           const BaselineLimits& limits) {
  params.Validate();
  const Hierarchy& h = pre.hierarchy;
  // Frequent items are exactly ranks 1..num_frequent (f-list order).
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));

  AlgoResult result;
  std::atomic<uint64_t> emitted{0};
  std::atomic<bool> aborted{false};
  std::vector<PatternMap> outputs(std::max<size_t>(1, config.num_reduce_tasks));

  using Job = MapReduceJob<SequenceView, Sequence, Frequency, SequenceHash>;
  Job job(
      [&](SequenceView t, const Job::EmitFn& emit) {
        if (aborted.load(std::memory_order_relaxed)) return;
        // Generalize every item to its closest frequent ancestor; blank out
        // items without one. Ancestor ranks strictly decrease walking up,
        // so the first ancestor with rank <= num_frequent is the closest.
        Sequence pruned;
        pruned.reserve(t.size());
        for (ItemId w : t) {
          ItemId replacement = kBlank;
          for (ItemId a : h.AncestorSpan(w)) {
            if (a <= num_frequent) {
              replacement = a;
              break;
            }
          }
          pruned.push_back(replacement);
        }
        // All items of `pruned` are frequent, and generalizations of
        // frequent items are frequent, so every enumerated subsequence is
        // free of infrequent items.
        SequenceSet subsequences;
        EnumerateGeneralizedSubsequences(pruned, h, params.gamma, params.lambda,
                                         &subsequences);
        if (emitted.fetch_add(subsequences.size(),
                              std::memory_order_relaxed) >
            limits.max_emitted_records) {
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
        for (const Sequence& s : subsequences) emit(s, 1);
      },
      [&](size_t rtask, const Sequence& key, std::vector<Frequency>& values) {
        Frequency total = 0;
        for (Frequency v : values) total += v;
        if (total >= params.sigma) outputs[rtask].emplace(key, total);
      },
      [](const Sequence& key, const Frequency& value) {
        return EncodedSequenceSize(key) + Varint64Size(value);
      });
  job.set_combiner([](Frequency* acc, Frequency&& incoming) { *acc += incoming; });

  result.job = job.Run(pre.database, config);
  result.aborted = aborted.load();
  for (PatternMap& part : outputs) result.patterns.merge(part);
  return result;
}

}  // namespace lash
