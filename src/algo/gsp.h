#ifndef LASH_ALGO_GSP_H_
#define LASH_ALGO_GSP_H_

#include "core/flist.h"
#include "core/params.h"
#include "util/hash.h"

namespace lash {

/// Counters of a GSP run (for the baseline comparison bench).
struct GspStats {
  uint64_t extended_items = 0;   ///< Total itemset entries materialized.
  uint64_t candidates = 0;       ///< Candidate sequences generated.
  uint64_t database_scans = 0;   ///< Full passes over the extended database.
};

/// The classic "extended sequences" approach to hierarchies of Srikant &
/// Agrawal [26], as described in Sec. 1 and Sec. 7 of the LASH paper: each
/// item of every input sequence is replaced by the itemset of the item and
/// all its ancestors, and a level-wise GSP-style miner runs on the result.
///
/// This reproduces the GSM output exactly (agreement-tested), but pays the
/// costs the paper calls out: the database inflates by roughly the
/// hierarchy depth, every level requires a full database scan, and there is
/// no partitioning to bound memory — the reasons LASH exists. Sequential,
/// single-node.
PatternMap RunGspExtended(const PreprocessResult& pre, const GsmParams& params,
                          GspStats* stats = nullptr);

}  // namespace lash

#endif  // LASH_ALGO_GSP_H_
