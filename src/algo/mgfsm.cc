#include "algo/mgfsm.h"

#include <stdexcept>

#include "algo/lash.h"

namespace lash {

AlgoResult RunMgFsm(const PreprocessResult& pre, const GsmParams& params,
                    const JobConfig& config) {
  if (pre.hierarchy.MaxDepth() != 0) {
    throw std::invalid_argument(
        "RunMgFsm: MG-FSM cannot handle hierarchies; preprocess with "
        "PreprocessFlat first");
  }
  LashOptions options;
  options.miner = MinerKind::kBfs;
  return RunLash(pre, params, config, options);
}

PreprocessResult PreprocessFlat(const FlatDatabase& raw_db,
                                size_t num_raw_items, const JobConfig& config,
                                JobResult* job_out) {
  return PreprocessWithJob(raw_db, Hierarchy::Flat(num_raw_items), config,
                           job_out);
}

}  // namespace lash
