#include "algo/algo.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/varint.h"

namespace lash {

PreprocessResult PreprocessWithJob(const FlatDatabase& raw_db,
                                   const Hierarchy& raw_h,
                                   const JobConfig& config,
                                   JobResult* job_out) {
  const size_t n = raw_h.NumItems();
  const size_t num_red = std::max<size_t>(1, config.num_reduce_tasks);
  std::vector<std::vector<Frequency>> partial(num_red,
                                              std::vector<Frequency>(n + 1, 0));

  // The f-list job of Sec. 3.3: map emits each item of G1(T) with count 1;
  // combine/reduce sum to generalized document frequencies.
  using Job = MapReduceJob<SequenceView, ItemId, Frequency>;
  Job job(
      [&](SequenceView t, const Job::EmitFn& emit) {
        // Dedup G1(T) via a small sort (ancestor chains are short).
        Sequence items;
        for (ItemId w : t) {
          for (ItemId a = w; a != kInvalidItem; a = raw_h.Parent(a)) {
            items.push_back(a);
          }
        }
        std::sort(items.begin(), items.end());
        items.erase(std::unique(items.begin(), items.end()), items.end());
        for (ItemId w : items) emit(w, 1);
      },
      [&](size_t rtask, const ItemId& item, std::vector<Frequency>& values) {
        Frequency total = 0;
        for (Frequency v : values) total += v;
        partial[rtask][item] += total;
      },
      [](const ItemId& key, const Frequency& value) {
        return Varint32Size(key) + Varint64Size(value);
      });
  job.set_combiner([](Frequency* acc, Frequency&& incoming) { *acc += incoming; });

  JobResult job_result = job.Run(raw_db, config);
  if (job_out != nullptr) *job_out = job_result;

  // The remainder of preprocessing (total order + recoding) is a cheap
  // driver-side step; reuse the sequential implementation for the ordering
  // logic by handing it the frequencies we just computed.
  std::vector<Frequency> raw_freq(n + 1, 0);
  for (const auto& part : partial) {
    for (size_t w = 1; w <= n; ++w) raw_freq[w] += part[w];
  }

  std::vector<ItemId> order(n);
  std::iota(order.begin(), order.end(), 1);
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (raw_freq[a] != raw_freq[b]) return raw_freq[a] > raw_freq[b];
    if (raw_h.Depth(a) != raw_h.Depth(b)) return raw_h.Depth(a) < raw_h.Depth(b);
    return a < b;
  });

  PreprocessResult result;
  result.rank_of_raw.assign(n + 1, kInvalidItem);
  result.raw_of_rank.assign(n + 1, kInvalidItem);
  result.freq.assign(n + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    ItemId raw = order[r];
    ItemId rank = static_cast<ItemId>(r + 1);
    result.rank_of_raw[raw] = rank;
    result.raw_of_rank[rank] = raw;
    result.freq[rank] = raw_freq[raw];
  }
  std::vector<ItemId> rank_parent(n + 1, kInvalidItem);
  for (size_t r = 1; r <= n; ++r) {
    ItemId raw_parent = raw_h.Parent(result.raw_of_rank[r]);
    if (raw_parent != kInvalidItem) {
      rank_parent[r] = result.rank_of_raw[raw_parent];
    }
  }
  result.hierarchy = Hierarchy(std::move(rank_parent));
  if (!result.hierarchy.IsRankMonotone()) {
    throw std::logic_error("PreprocessWithJob: order is not hierarchy-monotone");
  }
  result.database.Reserve(raw_db.size(), raw_db.TotalItems());
  for (SequenceView t : raw_db) {
    ItemId* recoded = result.database.AppendSlot(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      recoded[i] = result.rank_of_raw[t[i]];
    }
  }
  return result;
}

}  // namespace lash
