#ifndef LASH_ALGO_MGFSM_H_
#define LASH_ALGO_MGFSM_H_

#include "algo/algo.h"

namespace lash {

/// The MG-FSM baseline of Miliaraki et al. [20] (Sec. 6.3).
///
/// MG-FSM is LASH's ancestor: item-based partitioning with the same rewrite
/// framework but *without* hierarchy support, and with a standard BFS miner
/// for each partition. On hierarchy-free data LASH's machinery degenerates
/// to exactly MG-FSM's (w-generalization can only blank out irrelevant
/// items), so we realize MG-FSM as the LASH pipeline on a flat hierarchy
/// with the BFS local miner — the paper itself notes "in this setting, LASH
/// is equivalent to MG-FSM with its local miner replaced by PSM" (Sec. 6.3,
/// footnote 3). Throws std::invalid_argument if the hierarchy is not flat.
AlgoResult RunMgFsm(const PreprocessResult& pre, const GsmParams& params,
                    const JobConfig& config);

/// Strips hierarchy information from a database: re-runs preprocessing with
/// a flat hierarchy over the same raw items. Used by the "no hierarchy"
/// experiments (Fig. 4(e)).
PreprocessResult PreprocessFlat(const FlatDatabase& raw_db,
                                size_t num_raw_items, const JobConfig& config,
                                JobResult* job_out = nullptr);

/// Legacy-form convenience overload.
inline PreprocessResult PreprocessFlat(const Database& raw_db,
                                       size_t num_raw_items,
                                       const JobConfig& config,
                                       JobResult* job_out = nullptr) {
  return PreprocessFlat(FlatDatabase::FromDatabase(raw_db), num_raw_items,
                        config, job_out);
}

}  // namespace lash

#endif  // LASH_ALGO_MGFSM_H_
