// lash_gen — generate the synthetic benchmark datasets to files.
//
// Usage:
//   lash_gen --kind nyt  [--out PREFIX] [--save-snapshot FILE]
//            [--sentences N] [--hierarchy L|P|LP|CLP] [--seed N]
//   lash_gen --kind amzn [--out PREFIX] [--save-snapshot FILE]
//            [--sessions N] [--levels 2..8] [--seed N]
//
// --out writes PREFIX.sequences.txt and PREFIX.hierarchy.tsv in the
// io/text_io.h formats, ready for lash_mine. --save-snapshot preprocesses
// the generated corpus and writes a one-file dataset snapshot
// (io/snapshot.h) directly — no text round trip. At least one of the two
// outputs is required. --shards N additionally writes FILE.shard0..shardN-1
// next to the --save-snapshot file: a round-robin transaction split with
// the shared vocabulary/hierarchy, for lash_served worker fleets behind a
// router.

#include <fstream>
#include <iostream>

#include "api/lash_api.h"
#include "datagen/product_gen.h"
#include "datagen/text_gen.h"
#include "io/text_io.h"
#include "obs/trace.h"
#include "tools/arg_parse.h"
#include "tools/obs_args.h"

namespace {

int RealMain(const lash::tools::Args& args) {
  using namespace lash;
  std::string kind = args.Require("kind");
  if (!args.Has("out") && !args.Has("save-snapshot")) {
    throw tools::ArgError("pass --out PREFIX and/or --save-snapshot FILE");
  }

  // Generation has no request pipeline; one root span timing the whole
  // corpus build is this tool's entire trace.
  tools::MaybeOpenTraceFile(args);
  obs::Span gen_span(&obs::Tracer::Global(), tools::NewRequestTrace(),
                     "gen.corpus");
  gen_span.Tag("kind", kind);

  Database db;
  Vocabulary vocab;
  if (kind == "nyt") {
    TextGenConfig config;
    config.num_sentences = args.GetInt("sentences", 20000);
    config.seed = args.GetInt("seed", 42);
    std::string h = args.Get("hierarchy", "CLP");
    if (h == "L") {
      config.hierarchy = TextHierarchy::kL;
    } else if (h == "P") {
      config.hierarchy = TextHierarchy::kP;
    } else if (h == "LP") {
      config.hierarchy = TextHierarchy::kLP;
    } else if (h == "CLP") {
      config.hierarchy = TextHierarchy::kCLP;
    } else {
      std::cerr << "unknown --hierarchy (use L|P|LP|CLP)\n";
      return 2;
    }
    GeneratedText data = GenerateText(config);
    db = std::move(data.database);
    vocab = std::move(data.vocabulary);
  } else if (kind == "amzn") {
    ProductGenConfig config;
    config.num_sessions = args.GetInt("sessions", 20000);
    config.levels = static_cast<int>(
        args.GetInt("levels", 8, std::numeric_limits<int>::max()));
    config.seed = args.GetInt("seed", 7);
    GeneratedProducts data = GenerateProducts(config);
    db = std::move(data.database);
    vocab = std::move(data.vocabulary);
  } else {
    std::cerr << "unknown --kind (use nyt|amzn)\n";
    return 2;
  }

  if (args.Has("out")) {
    const std::string prefix = args.Require("out");
    std::ofstream dbf(prefix + ".sequences.txt");
    std::ofstream hf(prefix + ".hierarchy.tsv");
    if (!dbf || !hf) {
      std::cerr << "cannot open output files\n";
      return 2;
    }
    WriteDatabase(dbf, db, vocab);
    WriteHierarchy(hf, vocab);
    std::cerr << "wrote " << db.size() << " sequences and " << vocab.NumItems()
              << " items to " << prefix << ".{sequences.txt,hierarchy.tsv}\n";
  }
  if (args.Has("save-snapshot")) {
    const std::string path = args.Require("save-snapshot");
    // Shard splits first (they copy from db/vocab before the full snapshot
    // consumes them): round-robin by transaction, every shard sharing the
    // full vocabulary and hierarchy. The shards partition the corpus
    // exactly — their union is the full snapshot — which is what makes a
    // router over them answer queries identically to one big worker.
    const uint64_t shards = args.GetInt("shards", 0, 1024);
    for (uint64_t s = 0; s < shards; ++s) {
      Database shard_db;
      shard_db.reserve(db.size() / shards + 1);
      for (size_t i = s; i < db.size(); i += shards) shard_db.push_back(db[i]);
      Dataset shard =
          Dataset::FromMemory(std::move(shard_db), vocab);
      const std::string shard_path = path + ".shard" + std::to_string(s);
      shard.Save(shard_path);
      std::cerr << "saved shard snapshot (" << shard.NumSequences()
                << " sequences) to " << shard_path << "\n";
    }
    Dataset dataset = Dataset::FromMemory(std::move(db), std::move(vocab));
    dataset.Save(path);
    std::cerr << "saved snapshot (" << dataset.NumSequences()
              << " sequences, " << dataset.NumItems() << " items) to " << path
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using lash::tools::Args;
  try {
    Args args(argc, argv,
              {{"kind"},
               {"out"},
               {"save-snapshot"},
               {"sentences"},
               {"sessions"},
               {"hierarchy"},
               {"levels"},
               {"seed"},
               {"shards"},
               {"trace-out"}});
    if (args.Has("help")) {
      std::cout << "lash_gen --kind nyt|amzn [--out PREFIX] "
                   "[--save-snapshot FILE] [--shards N] [--sentences N] "
                   "[--sessions N] [--hierarchy L|P|LP|CLP] [--levels N] "
                   "[--seed N] [--trace-out FILE]\n";
      return 0;
    }
    return RealMain(args);
  } catch (const std::exception& e) {
    std::cerr << "lash_gen: " << e.what() << "\n";
    return 2;
  }
}
