// lash_served — the network front door of the serving layer: a TCP epoll
// event-loop server speaking the framed wire protocol of net/wire.h.
//
// Worker mode (default) serves a MiningService over snapshot-loaded shards:
//   lash_served (--snapshot FILE[,FILE...] [--mmap] |
//                --sequences FILE --hierarchy FILE | --gen nyt|amzn ...)
//               [--bind ADDR] [--port N] [--port-file FILE]
//               [--threads N] [--queue N] [--block] [--cache-mb N]
//   --snapshot takes a comma-separated list; each file becomes one shard
//   (TaskSpec::shard routes between them).
//
// Router mode scatters each query across shard workers and serves the
// merged answer through the same protocol. By default it runs the exact
// two-phase candidate/count protocol (phase-1 mine at the pigeonhole bound
// ⌈σ/k⌉, phase-2 exact recount of the union candidates; see net/router.h
// for the merge contract); --legacy-scatter keeps the one-phase σ′=1 path:
//   lash_served --router --workers HOST:PORT[,HOST:PORT...]
//               [--shard-sigma N] [--legacy-scatter]
//               [--bind ADDR] [--port N] [--port-file FILE]
//               [--threads N] [--io-timeout-ms N] [--slow-ms N]
//
// Both modes print "listening on ADDR:PORT" to stderr once the port is
// bound (and write the bare port to --port-file, for scripts that asked for
// an ephemeral --port 0), then run until SIGTERM/SIGINT, which triggers a
// graceful drain: no new connections, in-flight queries finish and flush.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/lash_api.h"
#include "net/router.h"
#include "net/server.h"
#include "net/service_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/mining_service.h"
#include "tools/arg_parse.h"
#include "tools/dataset_args.h"
#include "tools/obs_args.h"

namespace {

using namespace lash;

net::NetServer* g_server = nullptr;

void HandleSignal(int) {
  // Shutdown() is async-signal-safe: an atomic store plus an eventfd write.
  if (g_server != nullptr) g_server->Shutdown();
}

void InstallSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) items.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

/// Binds, announces the port, runs to graceful shutdown.
int Serve(net::ServerOptions options, net::Backend* backend,
          const tools::Args& args) {
  net::NetServer server(std::move(options), backend);
  g_server = &server;
  InstallSignalHandlers();

  if (args.Has("port-file")) {
    const std::string path = args.Require("port-file");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "lash_served: cannot write port file " << path << "\n";
      return 2;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }
  std::fprintf(stderr, "listening on %s:%u\n",
               args.Get("bind", "127.0.0.1").c_str(), server.port());
  std::fflush(stderr);

  server.Run();
  g_server = nullptr;
  std::fprintf(stderr, "lash_served: drained, exiting\n");
  return 0;
}

int RealMain(const tools::Args& args) {
  // One process, one registry, one tracer: every component (service,
  // router, event loop) records into the Global registry, which is what
  // the stats/metrics RPCs expose.
  tools::MaybeOpenTraceFile(args);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();

  net::ServerOptions server_options;
  server_options.bind_address = args.Get("bind", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(args.GetInt("port", 0, 65535));
  server_options.metrics = &metrics;

  if (args.Has("router")) {
    std::vector<net::WorkerAddress> workers;
    for (const std::string& address : SplitCommaList(args.Require("workers"))) {
      workers.push_back(net::ParseWorkerAddress(address));
    }
    if (workers.empty()) {
      throw tools::ArgError("--workers needs at least one HOST:PORT");
    }
    net::RouterOptions options;
    options.two_phase = !args.Has("legacy-scatter");
    // 0 keeps the mode's default σ′: the pigeonhole bound ⌈σ/k⌉ when
    // two-phase, 1 on the legacy path.
    options.shard_sigma = args.GetInt("shard-sigma", 0);
    options.scatter_threads = args.GetInt("threads", 0);
    options.client.io_timeout_ms =
        static_cast<int>(args.GetInt("io-timeout-ms", 0));
    options.metrics = &metrics;
    options.slow_query_ms = static_cast<double>(args.GetInt("slow-ms", 0));
    const size_t num_workers = workers.size();
    net::RouterBackend backend(std::move(workers), options);
    if (options.shard_sigma != 0) {
      std::fprintf(stderr,
                   "routing across %zu workers (%s, shard sigma %llu)\n",
                   num_workers, options.two_phase ? "two-phase" : "one-phase",
                   (unsigned long long)options.shard_sigma);
    } else {
      std::fprintf(stderr, "routing across %zu workers (%s)\n", num_workers,
                   options.two_phase
                       ? "two-phase, pigeonhole shard sigma"
                       : "one-phase, shard sigma 1");
    }
    return Serve(std::move(server_options), &backend, args);
  }

  // Worker mode: load every shard before binding the port, so a script
  // that waits for the port file never races a half-loaded server.
  std::vector<std::unique_ptr<Dataset>> owned;
  if (args.Has("snapshot")) {
    const Dataset::LoadMode mode = args.Has("mmap") ? Dataset::LoadMode::kMmap
                                                    : Dataset::LoadMode::kCopy;
    for (const std::string& path : SplitCommaList(args.Require("snapshot"))) {
      owned.emplace_back(
          std::unique_ptr<Dataset>(new Dataset(Dataset::FromSnapshot(path,
                                                                     mode))));
      tools::VerifyIfMapped(*owned.back());
    }
    if (owned.empty()) throw tools::ArgError("--snapshot names no files");
  } else {
    owned.emplace_back(std::unique_ptr<Dataset>(
        new Dataset(tools::LoadDatasetFromArgs(args, /*allow_gen=*/true))));
  }
  std::vector<const Dataset*> shards;
  for (const auto& dataset : owned) {
    shards.push_back(dataset.get());
    std::fprintf(stderr, "shard %zu: dataset %llu, %zu sequences, %zu items\n",
                 shards.size() - 1, (unsigned long long)dataset->id(),
                 dataset->NumSequences(), dataset->NumItems());
  }

  serve::ServiceOptions service_options;
  service_options.executor_threads = args.GetInt("threads", 0);
  service_options.queue_capacity = args.GetInt("queue", 64);
  service_options.admission = args.Has("block")
                                  ? serve::AdmissionPolicy::kBlock
                                  : serve::AdmissionPolicy::kReject;
  service_options.cache_bytes = args.GetInt("cache-mb", 64) << 20;
  service_options.metrics = &metrics;
  service_options.slow_query_ms =
      static_cast<double>(args.GetInt("slow-ms", 0));
  net::ServiceBackend backend(std::move(shards), service_options);
  return Serve(std::move(server_options), &backend, args);
}

}  // namespace

int main(int argc, char** argv) {
  using lash::tools::Args;
  try {
    Args args(argc, argv, {{"snapshot"},
                           {"sequences"},
                           {"hierarchy"},
                           {"save-snapshot"},
                           {"mmap", false},
                           {"gen"},
                           {"sentences"},
                           {"lemmas"},
                           {"sessions"},
                           {"products"},
                           {"levels"},
                           {"seed"},
                           {"bind"},
                           {"port"},
                           {"port-file"},
                           {"threads"},
                           {"queue"},
                           {"block", false},
                           {"cache-mb"},
                           {"router", false},
                           {"workers"},
                           {"shard-sigma"},
                           {"legacy-scatter", false},
                           {"io-timeout-ms"},
                           {"trace-out"},
                           {"slow-ms"}});
    if (args.Has("help")) {
      std::cout
          << "worker: lash_served (--snapshot FILE[,FILE...] [--mmap] | "
             "--sequences FILE --hierarchy FILE | --gen nyt|amzn) "
             "[--bind ADDR] [--port N] [--port-file FILE] [--threads N] "
             "[--queue N] [--block] [--cache-mb N] [--trace-out FILE] "
             "[--slow-ms N]\n"
             "router: lash_served --router --workers HOST:PORT[,...] "
             "[--shard-sigma N] [--legacy-scatter] [--bind ADDR] [--port N] "
             "[--port-file FILE] [--threads N] [--io-timeout-ms N] "
             "[--trace-out FILE] [--slow-ms N]\n";
      return 0;
    }
    return RealMain(args);
  } catch (const std::exception& e) {
    std::cerr << "lash_served: " << e.what() << "\n";
    return 2;
  }
}
