#ifndef LASH_TOOLS_OBS_ARGS_H_
#define LASH_TOOLS_OBS_ARGS_H_

#include <string>

#include "obs/trace.h"
#include "tools/arg_parse.h"

namespace lash::tools {

/// The observability flags every tool shares; splice into the tool's Args
/// spec alongside kDatasetFlags.
inline constexpr struct {
  const char* trace_out = "trace-out";  ///< JSONL span sink path.
} kObsFlags;

/// Honors --trace-out: points the process tracer at a JSONL file. Returns
/// whether tracing is on. Call once, before any request work — spans from
/// requests that started earlier are not retroactively recorded.
inline bool MaybeOpenTraceFile(const Args& args) {
  if (!args.Has(kObsFlags.trace_out)) return false;
  obs::Tracer::Global().OpenFile(args.Require(kObsFlags.trace_out));
  return true;
}

/// A fresh root trace context for one tool-issued request — the edge of
/// the trace, where ids are minted. Inactive when the tracer has no sink,
/// so untraced tool runs keep sending v1 (traceless) requests.
inline obs::TraceContext NewRequestTrace() {
  if (!obs::Tracer::Global().enabled()) return {};
  return obs::TraceContext{obs::TraceId::Make(), 0};
}

}  // namespace lash::tools

#endif  // LASH_TOOLS_OBS_ARGS_H_
