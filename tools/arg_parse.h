#ifndef LASH_TOOLS_ARG_PARSE_H_
#define LASH_TOOLS_ARG_PARSE_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

namespace lash::tools {

/// Minimal `--flag value` / `--flag` parser shared by the CLI tools.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        std::exit(2);
      }
      std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      std::cerr << "missing required flag --" << key << "\n";
      std::exit(2);
    }
    return it->second;
  }

  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace lash::tools

#endif  // LASH_TOOLS_ARG_PARSE_H_
