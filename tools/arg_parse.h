#ifndef LASH_TOOLS_ARG_PARSE_H_
#define LASH_TOOLS_ARG_PARSE_H_

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

namespace lash::tools {

/// Thrown on any command-line problem (unknown flag, missing value,
/// unparsable number). The tools catch it in main, print the message, and
/// exit 2 — no uncaught std::invalid_argument terminates.
class ArgError : public std::runtime_error {
 public:
  explicit ArgError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Strict non-negative integer parse shared by Args::GetInt and the
/// lash_serve script parser: false on junk, partial parses, signs, leading
/// whitespace, or overflow (stoull skips whitespace and accepts a sign, so
/// requiring a leading digit rejects " -3", "+3", and " 3" too). One
/// definition so flags and script keys can never drift on accepted syntax.
inline bool ParseStrictUint64(const std::string& text, uint64_t* value) {
  size_t consumed = 0;
  try {
    *value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  return consumed == text.size() && !text.empty() &&
         std::isdigit(static_cast<unsigned char>(text[0]));
}

/// Declaration of one `--flag` a tool understands.
struct FlagSpec {
  const char* name;        ///< Without the leading "--".
  bool takes_value = true; ///< False for boolean switches (e.g. --distributed).
};

/// Minimal `--flag value` / `--flag` parser shared by the CLI tools.
///
/// Each tool declares its full flag set up front; anything else — an unknown
/// or typo'd flag, a value-taking flag with no value, a positional argument —
/// raises ArgError with a message naming the offender, instead of being
/// silently accepted or crashing later.
class Args {
 public:
  Args(int argc, char** argv, std::initializer_list<FlagSpec> spec) {
    std::map<std::string, bool> takes_value;
    takes_value["help"] = false;  // Every tool answers --help.
    for (const FlagSpec& flag : spec) takes_value[flag.name] = flag.takes_value;

    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw ArgError("unexpected argument: " + arg +
                       " (flags start with --; run with --help for usage)");
      }
      std::string key = arg.substr(2);
      auto it = takes_value.find(key);
      if (it == takes_value.end()) {
        throw ArgError("unknown flag --" + key +
                       " (run with --help for usage)");
      }
      if (!it->second) {
        values_[key] = "";
        continue;
      }
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        throw ArgError("flag --" + key + " requires a value");
      }
      values_[key] = argv[++i];
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      throw ArgError("missing required flag --" + key);
    }
    return it->second;
  }

  /// Parses the flag as a non-negative integer <= `max`; raises ArgError on
  /// junk, partial parses, signs, overflow, or out-of-range values, so a
  /// narrowing cast at the call site can never silently wrap.
  uint64_t GetInt(const std::string& key, uint64_t fallback,
                  uint64_t max = std::numeric_limits<uint64_t>::max()) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& text = it->second;
    uint64_t value = 0;
    if (!ParseStrictUint64(text, &value)) {
      throw ArgError("invalid value for --" + key + ": '" + text +
                     "' (expected a non-negative integer)");
    }
    if (value > max) {
      throw ArgError("value for --" + key + " is out of range: " + text +
                     " (max " + std::to_string(max) + ")");
    }
    return value;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace lash::tools

#endif  // LASH_TOOLS_ARG_PARSE_H_
