#ifndef LASH_TOOLS_DATASET_ARGS_H_
#define LASH_TOOLS_DATASET_ARGS_H_

#include <cstdio>
#include <string>
#include <utility>

#include "api/lash_api.h"
#include "datagen/corpus_recipes.h"
#include "tools/arg_parse.h"

namespace lash::tools {

/// The flags every dataset-consuming tool shares; splice into the tool's
/// Args spec: text input (--sequences + --hierarchy), snapshot input
/// (--snapshot, optionally --mmap), and --save-snapshot. Tools that also
/// self-generate add the --gen flags separately.
inline constexpr struct {
  const char* sequences = "sequences";
  const char* hierarchy = "hierarchy";
  const char* snapshot = "snapshot";
  const char* save_snapshot = "save-snapshot";
  const char* mmap = "mmap";  ///< Boolean: snapshot LoadMode::kMmap.
} kDatasetFlags;

/// Loads the one dataset a tool invocation names: text files
/// (--sequences/--hierarchy), a snapshot (--snapshot), or — when
/// `allow_gen` — a self-generated corpus (--gen nyt|amzn with the shared
/// recipes of datagen/corpus_recipes.h). Exactly one source must be
/// given (ArgError otherwise: a typo'd mix must error, not silently load
/// the wrong data). Follow with MaybeSaveSnapshot (Dataset is pinned in
/// place — no copies/moves — so the save step cannot live in here).
inline Dataset LoadDatasetFromArgs(const Args& args, bool allow_gen = false) {
  const int sources =
      ((args.Has(kDatasetFlags.sequences) || args.Has(kDatasetFlags.hierarchy))
           ? 1
           : 0) +
      (args.Has(kDatasetFlags.snapshot) ? 1 : 0) +
      ((allow_gen && args.Has("gen")) ? 1 : 0);
  if (sources != 1) {
    throw ArgError(
        std::string("pass exactly one of --sequences FILE --hierarchy FILE") +
        " or --snapshot FILE" + (allow_gen ? " or --gen nyt|amzn" : ""));
  }
  if (args.Has(kDatasetFlags.mmap) && !args.Has(kDatasetFlags.snapshot)) {
    throw ArgError("--mmap only applies to --snapshot loads");
  }

  return [&]() -> Dataset {
    if (allow_gen && args.Has("gen")) {
      const std::string kind = args.Get("gen", "nyt");
      if (kind == "nyt") {
        NytRecipe recipe;
        recipe.sentences = args.GetInt("sentences", 2000);
        recipe.lemmas = args.GetInt("lemmas", 800);
        recipe.seed = args.GetInt("seed", recipe.seed);
        GeneratedText data = MakeNytCorpus(recipe);
        return Dataset::FromMemory(std::move(data.database),
                                   std::move(data.vocabulary),
                                   std::move(data.hierarchy));
      }
      if (kind == "amzn") {
        AmznRecipe recipe;
        recipe.sessions = args.GetInt("sessions", 2000);
        recipe.products = args.GetInt("products", 1000);
        recipe.levels = static_cast<int>(args.GetInt("levels", 8, 8));
        recipe.seed = args.GetInt("seed", recipe.seed);
        GeneratedProducts data = MakeAmznCorpus(recipe);
        return Dataset::FromMemory(std::move(data.database),
                                   std::move(data.vocabulary),
                                   std::move(data.hierarchy));
      }
      throw ArgError("unknown --gen kind (use nyt|amzn)");
    }
    if (args.Has(kDatasetFlags.snapshot)) {
      return Dataset::FromSnapshot(args.Require(kDatasetFlags.snapshot),
                                   args.Has(kDatasetFlags.mmap)
                                       ? Dataset::LoadMode::kMmap
                                       : Dataset::LoadMode::kCopy);
    }
    return Dataset::FromFiles(args.Require(kDatasetFlags.sequences),
                              args.Require(kDatasetFlags.hierarchy));
  }();
}

/// Pays the deferred corpus checks of a mapped snapshot load up front
/// (no-op for copy/text loads, which verified everything already). The
/// tools call this right after LoadDatasetFromArgs: a CLI run must reject
/// a corrupted file with a typed IoError instead of mining garbage, and
/// still skips the parse, the preprocessing, and the copy. Long-lived API
/// users that want the pure O(page faults) cold start call VerifyCorpus()
/// on their own schedule (or accept the risk for files they just wrote).
inline void VerifyIfMapped(const Dataset& dataset) {
  if (dataset.mmap_backed()) dataset.VerifyCorpus();
}

/// Honors --save-snapshot for a freshly loaded dataset (no-op otherwise).
inline void MaybeSaveSnapshot(const Args& args, const Dataset& dataset) {
  if (!args.Has(kDatasetFlags.save_snapshot)) return;
  const std::string path = args.Require(kDatasetFlags.save_snapshot);
  dataset.Save(path);
  std::fprintf(stderr, "saved snapshot to %s\n", path.c_str());
}

}  // namespace lash::tools

#endif  // LASH_TOOLS_DATASET_ARGS_H_
