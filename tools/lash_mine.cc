// lash_mine — mine generalized frequent sequences from text files.
//
// Usage:
//   lash_mine --sequences data.txt --hierarchy hier.tsv \
//             [--sigma 100] [--gamma 0] [--lambda 5] \
//             [--miner psm+index|psm|dfs|bfs] [--distributed] \
//             [--filter none|closed|maximal] [--top K] [--output out.txt]
//
// Input formats (io/text_io.h): one sequence per line of item names;
// hierarchy as child<TAB>parent lines. Output: frequency<TAB>pattern lines.

#include <fstream>
#include <iostream>

#include "algo/lash.h"
#include "algo/sequential.h"
#include "io/text_io.h"
#include "stats/filters.h"
#include "tools/arg_parse.h"

int main(int argc, char** argv) {
  using namespace lash;
  tools::Args args(argc, argv);
  if (args.Has("help")) {
    std::cout << "lash_mine --sequences FILE --hierarchy FILE [--sigma N] "
                 "[--gamma N] [--lambda N] [--miner NAME] [--distributed] "
                 "[--filter none|closed|maximal] [--top K] [--output FILE]\n";
    return 0;
  }

  Vocabulary vocab;
  {
    std::ifstream hf(args.Require("hierarchy"));
    if (!hf) {
      std::cerr << "cannot open hierarchy file\n";
      return 1;
    }
    ReadHierarchy(hf, &vocab);
  }
  Database db;
  {
    std::ifstream dbf(args.Require("sequences"));
    if (!dbf) {
      std::cerr << "cannot open sequences file\n";
      return 1;
    }
    db = ReadDatabase(dbf, &vocab);
  }
  std::cerr << "read " << db.size() << " sequences, " << vocab.NumItems()
            << " items\n";

  GsmParams params;
  params.sigma = args.GetInt("sigma", 100);
  params.gamma = static_cast<uint32_t>(args.GetInt("gamma", 0));
  params.lambda = static_cast<uint32_t>(args.GetInt("lambda", 5));
  params.Validate();
  MinerKind miner = ParseMinerKind(args.Get("miner", "psm+index"));

  PreprocessResult pre;
  PatternMap patterns;
  JobConfig config;
  if (args.Has("distributed")) {
    pre = PreprocessWithJob(db, vocab.BuildHierarchy(), config);
    LashOptions options;
    options.miner = miner;
    AlgoResult result = RunLash(pre, params, config, options);
    patterns = std::move(result.patterns);
    std::cerr << "map " << result.job.times.map_ms << " ms, shuffle "
              << result.job.times.shuffle_ms << " ms, reduce "
              << result.job.times.reduce_ms << " ms, "
              << result.job.counters.map_output_bytes << " bytes shuffled\n";
  } else {
    pre = Preprocess(db, vocab.BuildHierarchy());
    patterns = MineSequential(pre, params, miner);
  }
  std::cerr << "mined " << patterns.size() << " patterns\n";

  std::string filter = args.Get("filter", "none");
  if (filter == "closed") {
    patterns = FilterClosed(patterns, pre.hierarchy);
  } else if (filter == "maximal") {
    patterns = FilterMaximal(patterns, pre.hierarchy);
  } else if (filter != "none") {
    std::cerr << "unknown --filter (use none|closed|maximal)\n";
    return 2;
  }
  if (args.Has("top")) {
    auto top = TopK(patterns, args.GetInt("top", 10));
    patterns = PatternMap(top.begin(), top.end());
  }

  auto name_of = [&](ItemId rank) { return vocab.Name(pre.raw_of_rank[rank]); };
  if (args.Has("output")) {
    std::ofstream out(args.Get("output", ""));
    WritePatterns(out, patterns, name_of);
  } else {
    WritePatterns(std::cout, patterns, name_of);
  }
  return 0;
}
