// lash_mine — mine generalized frequent sequences from text files, through
// the lash::Dataset / lash::MiningTask facade (api/lash_api.h).
//
// Usage:
//   lash_mine (--sequences data.txt --hierarchy hier.tsv | --snapshot FILE) \
//             [--sigma 100] [--gamma 0] [--lambda 5] \
//             [--algo sequential|lash|mgfsm|gsp|naive|seminaive] \
//             [--miner psm+index|psm|dfs|bfs] [--distributed] [--threads N] \
//             [--filter none|closed|maximal] [--top K] [--output out.txt] \
//             [--save-snapshot FILE] [--mmap]
//
// --snapshot loads a one-file dataset snapshot (written by --save-snapshot
// or Dataset::Save), which skips text parsing and the whole preprocessing
// phase; --save-snapshot writes one after loading so the next run can.
//
// Input formats (io/text_io.h): one sequence per line of item names;
// hierarchy as child<TAB>parent lines. Output: frequency<TAB>pattern lines.
// Any configuration or input problem prints a message and exits 2.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "api/lash_api.h"
#include "obs/trace.h"
#include "tools/arg_parse.h"
#include "tools/dataset_args.h"
#include "tools/obs_args.h"

namespace {

int RealMain(const lash::tools::Args& args) {
  using namespace lash;

  // Parse every flag before touching the (potentially huge) input files, so
  // a bad invocation fails immediately.
  // --distributed is kept as a shorthand for --algo lash.
  std::string algo_name =
      args.Get("algo", args.Has("distributed") ? "lash" : "sequential");
  Algorithm algorithm = ParseAlgorithm(algo_name);
  if (args.Has("distributed") && algorithm != Algorithm::kLash) {
    throw lash::tools::ArgError("--distributed is shorthand for --algo lash "
                                "and conflicts with --algo " + algo_name);
  }
  GsmParams params;
  params.sigma = args.GetInt("sigma", 100);
  params.gamma = static_cast<uint32_t>(
      args.GetInt("gamma", 0, std::numeric_limits<uint32_t>::max()));
  params.lambda = static_cast<uint32_t>(
      args.GetInt("lambda", 5, std::numeric_limits<uint32_t>::max()));
  size_t threads = args.GetInt("threads", 0);
  PatternFilter filter = ParsePatternFilter(args.Get("filter", "none"));
  uint64_t top = args.Has("top") ? args.GetInt("top", 10) : 0;
  // WithTopK(0) would mean "all", the opposite of what --top 0 suggests.
  if (args.Has("top") && top == 0) {
    throw lash::tools::ArgError("--top must be > 0");
  }
  params.Validate();  // sigma/lambda problems also fail before loading.
  // Only an explicit --miner reaches the task: algorithms without a local
  // miner reject an explicitly chosen one. Checked here (and again by
  // MiningTask::Validate) so the contradiction also fails before loading.
  MinerKind miner = MinerKind::kPsmIndex;
  if (args.Has("miner")) {
    miner = ParseMinerKind(args.Get("miner", "psm+index"));
    if (algorithm != Algorithm::kSequential && algorithm != Algorithm::kLash) {
      throw lash::tools::ArgError("--miner is not used by --algo " +
                                  algo_name);
    }
  }

  Dataset dataset = lash::tools::LoadDatasetFromArgs(args);
  lash::tools::VerifyIfMapped(dataset);
  std::cerr << "read " << dataset.NumSequences() << " sequences, "
            << dataset.NumItems() << " items (read "
            << dataset.load_times().read_ms << " ms, preprocess "
            << dataset.load_times().preprocess_ms << " ms)\n";
  lash::tools::MaybeSaveSnapshot(args, dataset);

  MiningTask task(dataset);
  task.WithAlgorithm(algorithm)
      .WithParams(params)
      .WithThreads(threads)
      .WithFilter(filter)
      .WithTopK(top);
  if (args.Has("miner")) task.WithMiner(miner);

  // Validate before touching the output file, so a bad configuration never
  // truncates previous results.
  bool valid = true;
  for (const std::string& problem : task.Validate()) {
    std::cerr << "lash_mine: invalid configuration: " << problem << "\n";
    valid = false;
  }
  if (!valid) return 2;

  // File output goes to a temp file renamed into place only after mining
  // succeeds, so a failed or interrupted run never truncates a previous
  // results file.
  std::string out_path = args.Get("output", "");
  std::string tmp_path = out_path + ".tmp";
  std::ofstream file;
  if (args.Has("output")) {
    file.open(tmp_path);
    if (!file) {
      std::cerr << "cannot open output file " << tmp_path << "\n";
      return 2;
    }
  }
  TextWriterSink sink(args.Has("output") ? static_cast<std::ostream&>(file)
                                         : std::cout);
  // This run is the whole request: the ambient context makes the facade's
  // api.mine span (and the MapReduce spans under it) a fresh root trace
  // when --trace-out is set, and a no-op otherwise.
  lash::tools::MaybeOpenTraceFile(args);
  obs::ScopedAmbientContext ambient(lash::tools::NewRequestTrace());
  RunResult result;
  try {
    result = task.Run(sink);
  } catch (...) {
    if (args.Has("output")) {
      file.close();
      std::remove(tmp_path.c_str());
    }
    throw;
  }
  if (args.Has("output")) {
    file.close();
    if (!file || std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
      std::cerr << "cannot write output file " << out_path << "\n";
      std::remove(tmp_path.c_str());
      return 2;
    }
  }

  std::cerr << "mined " << result.patterns_mined << " patterns";
  if (result.patterns_emitted != result.patterns_mined) {
    std::cerr << ", kept " << result.patterns_emitted;
  }
  std::cerr << "\n";
  if (result.job.times.TotalMs() > 0) {
    std::cerr << "map " << result.job.times.map_ms << " ms, shuffle "
              << result.job.times.shuffle_ms << " ms, reduce "
              << result.job.times.reduce_ms << " ms, "
              << result.job.counters.map_output_bytes << " bytes shuffled\n";
  }
  if (result.aborted) {
    std::cerr << "warning: emit cap reached, output is incomplete\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using lash::tools::Args;
  try {
    Args args(argc, argv,
              {{"sequences"},
               {"hierarchy"},
               {"snapshot"},
               {"save-snapshot"},
               {"mmap", false},
               {"sigma"},
               {"gamma"},
               {"lambda"},
               {"algo"},
               {"miner"},
               {"distributed", false},
               {"threads"},
               {"filter"},
               {"top"},
               {"output"},
               {"trace-out"}});
    if (args.Has("help")) {
      std::cout << "lash_mine (--sequences FILE --hierarchy FILE | "
                   "--snapshot FILE) [--sigma N] "
                   "[--gamma N] [--lambda N] "
                   "[--algo sequential|lash|mgfsm|gsp|naive|seminaive] "
                   "[--miner NAME] [--distributed] [--threads N] "
                   "[--filter none|closed|maximal] [--top K] [--output FILE] "
                   "[--save-snapshot FILE] [--mmap] [--trace-out FILE]\n";
      return 0;
    }
    return RealMain(args);
  } catch (const std::exception& e) {
    std::cerr << "lash_mine: " << e.what() << "\n";
    return 2;
  }
}
