# ctest driver for the snapshot save -> load -> mine smoke:
#   1. lash_gen writes the snapshot *directly* (--save-snapshot): the
#      corpus is preprocessed in memory and serialized — no text round trip;
#   2. lash_mine mines it with the copying snapshot loader;
#   3. lash_mine mines it again with --mmap (the zero-copy loader);
#   4. the two pattern files must be byte-identical.
# (Text-vs-snapshot parity is covered by tests/snapshot_test.cc, where both
# sides share one interning order; here the point is the snapshot pipeline
# itself and copy/mmap load-mode parity.)
# Variables: LASH_GEN, LASH_MINE (tool paths), WORK_DIR (scratch directory).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${LASH_GEN}" --kind nyt
          --save-snapshot "${WORK_DIR}/corpus.lash"
          --sentences 400 --hierarchy CLP
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lash_gen --save-snapshot failed (${rc})")
endif()

execute_process(
  COMMAND "${LASH_MINE}"
          --snapshot "${WORK_DIR}/corpus.lash"
          --sigma 8 --lambda 5
          --output "${WORK_DIR}/patterns_snapshot.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lash_mine from snapshot (copy) failed (${rc})")
endif()

execute_process(
  COMMAND "${LASH_MINE}"
          --snapshot "${WORK_DIR}/corpus.lash" --mmap
          --sigma 8 --lambda 5
          --output "${WORK_DIR}/patterns_mmap.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lash_mine from snapshot (--mmap) failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/patterns_snapshot.txt" "${WORK_DIR}/patterns_mmap.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mmap-mined patterns differ from copy-loaded ones")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "snapshot smoke ok")
