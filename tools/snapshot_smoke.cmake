# ctest driver for the snapshot save -> load -> mine smoke:
#   1. lash_gen writes a small text corpus;
#   2. lash_mine mines it from text and saves a snapshot (--save-snapshot);
#   3. lash_mine mines again from the snapshot alone (--snapshot);
#   4. the two pattern files must be byte-identical.
# Variables: LASH_GEN, LASH_MINE (tool paths), WORK_DIR (scratch directory).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${LASH_GEN}" --kind nyt --out "${WORK_DIR}/corpus"
          --sentences 400 --hierarchy CLP
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lash_gen failed (${rc})")
endif()

execute_process(
  COMMAND "${LASH_MINE}"
          --sequences "${WORK_DIR}/corpus.sequences.txt"
          --hierarchy "${WORK_DIR}/corpus.hierarchy.tsv"
          --sigma 8 --lambda 5
          --save-snapshot "${WORK_DIR}/corpus.lash"
          --output "${WORK_DIR}/patterns_text.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lash_mine from text failed (${rc})")
endif()

execute_process(
  COMMAND "${LASH_MINE}"
          --snapshot "${WORK_DIR}/corpus.lash"
          --sigma 8 --lambda 5
          --output "${WORK_DIR}/patterns_snapshot.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lash_mine from snapshot failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/patterns_text.txt" "${WORK_DIR}/patterns_snapshot.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "snapshot-mined patterns differ from text-mined ones")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "snapshot smoke ok")
