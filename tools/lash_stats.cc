// lash_stats — Table-3 style output statistics for a dataset: mines the
// data hierarchically and flat, then reports the share of non-trivial,
// closed and maximal generalized sequences.
//
// Usage:
//   lash_stats --sequences data.txt --hierarchy hier.tsv \
//              [--sigma 100] [--gamma 0] [--lambda 5]

#include <fstream>
#include <iostream>

#include "algo/sequential.h"
#include "io/text_io.h"
#include "stats/output_stats.h"
#include "tools/arg_parse.h"

int main(int argc, char** argv) {
  using namespace lash;
  tools::Args args(argc, argv);
  if (args.Has("help")) {
    std::cout << "lash_stats --sequences FILE --hierarchy FILE [--sigma N] "
                 "[--gamma N] [--lambda N]\n";
    return 0;
  }

  Vocabulary vocab;
  std::ifstream hf(args.Require("hierarchy"));
  if (!hf) {
    std::cerr << "cannot open hierarchy file\n";
    return 1;
  }
  ReadHierarchy(hf, &vocab);
  std::ifstream dbf(args.Require("sequences"));
  if (!dbf) {
    std::cerr << "cannot open sequences file\n";
    return 1;
  }
  Database db = ReadDatabase(dbf, &vocab);

  GsmParams params;
  params.sigma = args.GetInt("sigma", 100);
  params.gamma = static_cast<uint32_t>(args.GetInt("gamma", 0));
  params.lambda = static_cast<uint32_t>(args.GetInt("lambda", 5));
  params.Validate();

  Hierarchy hierarchy = vocab.BuildHierarchy();
  PreprocessResult pre = Preprocess(db, hierarchy);
  PatternMap gsm = MineSequential(pre, params);

  PreprocessResult flat_pre =
      Preprocess(db, Hierarchy::Flat(hierarchy.NumItems()));
  PatternMap flat = MineSequential(flat_pre, params);
  std::vector<ItemId> flat_to_gsm(flat_pre.raw_of_rank.size(), kInvalidItem);
  for (size_t r = 1; r < flat_pre.raw_of_rank.size(); ++r) {
    flat_to_gsm[r] = pre.rank_of_raw[flat_pre.raw_of_rank[r]];
  }
  PatternMap flat_patterns = RemapPatterns(flat, flat_to_gsm);

  OutputStatsResult stats = ComputeOutputStats(gsm, flat_patterns,
                                               pre.hierarchy);
  std::cout << "patterns     " << stats.total << "\n"
            << "flat         " << flat.size() << "\n"
            << "non-trivial  " << stats.nontrivial_pct << " %\n"
            << "closed       " << stats.closed_pct << " %\n"
            << "maximal      " << stats.maximal_pct << " %\n";
  return 0;
}
