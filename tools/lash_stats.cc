// lash_stats — Table-3 style output statistics for a dataset: mines the
// data hierarchically and flat through the lash::Dataset facade, then
// reports the share of non-trivial, closed and maximal generalized
// sequences.
//
// Usage:
//   lash_stats (--sequences data.txt --hierarchy hier.tsv | --snapshot F) \
//              [--sigma 100] [--gamma 0] [--lambda 5] [--save-snapshot FILE]
//              [--mmap]

#include <iostream>

#include "api/lash_api.h"
#include "obs/trace.h"
#include "stats/output_stats.h"
#include "tools/arg_parse.h"
#include "tools/dataset_args.h"
#include "tools/obs_args.h"

namespace {

int RealMain(const lash::tools::Args& args) {
  using namespace lash;

  Dataset dataset = lash::tools::LoadDatasetFromArgs(args);
  lash::tools::VerifyIfMapped(dataset);
  lash::tools::MaybeSaveSnapshot(args, dataset);

  MiningTask task(dataset);
  task.WithSigma(args.GetInt("sigma", 100))
      .WithGamma(static_cast<uint32_t>(
          args.GetInt("gamma", 0, std::numeric_limits<uint32_t>::max())))
      .WithLambda(static_cast<uint32_t>(
          args.GetInt("lambda", 5, std::numeric_limits<uint32_t>::max())));

  // One dataset, two queries: hierarchical GSM and the flat baseline the
  // non-trivial percentage is measured against. Both api.mine spans land
  // in one trace when --trace-out is set.
  lash::tools::MaybeOpenTraceFile(args);
  obs::ScopedAmbientContext ambient(lash::tools::NewRequestTrace());
  PatternMap gsm = task.Mine();
  PatternMap flat = task.WithFlatHierarchy().Mine();
  PatternMap flat_patterns = dataset.FlatToHierarchicalRanks(flat);

  OutputStatsResult stats =
      ComputeOutputStats(gsm, flat_patterns, dataset.preprocessed().hierarchy);
  std::cout << "patterns     " << stats.total << "\n"
            << "flat         " << flat.size() << "\n"
            << "non-trivial  " << stats.nontrivial_pct << " %\n"
            << "closed       " << stats.closed_pct << " %\n"
            << "maximal      " << stats.maximal_pct << " %\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using lash::tools::Args;
  try {
    Args args(argc, argv,
              {{"sequences"},
               {"hierarchy"},
               {"snapshot"},
               {"save-snapshot"},
               {"mmap", false},
               {"sigma"},
               {"gamma"},
               {"lambda"},
               {"trace-out"}});
    if (args.Has("help")) {
      std::cout << "lash_stats (--sequences FILE --hierarchy FILE | "
                   "--snapshot FILE) [--sigma N] [--gamma N] [--lambda N] "
                   "[--save-snapshot FILE] [--mmap] [--trace-out FILE]\n";
      return 0;
    }
    return RealMain(args);
  } catch (const std::exception& e) {
    std::cerr << "lash_stats: " << e.what() << "\n";
    return 2;
  }
}
