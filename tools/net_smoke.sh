#!/usr/bin/env bash
# net_smoke.sh — end-to-end smoke of the network serving tier, run by ctest
# as lash_net_smoke (CMakeLists.txt passes the tool paths).
#
#   usage: net_smoke.sh LASH_GEN LASH_MINE LASH_SERVED LASH_SERVE WORKDIR
#
# Generates a snapshot plus a 2-way shard split, starts a full-corpus worker,
# two shard workers, and a router over them — all on ephemeral loopback
# ports (--port 0 --port-file) — then mines the same queries three ways:
# locally with lash_mine, through the single worker, and through the router.
# The three pattern streams must be line-identical after sorting. Also
# exercises the stats RPC (including the metrics snapshot), a traced mine
# whose single trace id must appear in the client, router, and both shard
# workers' --trace-out JSONL files, and the SIGTERM graceful drain.

set -euo pipefail

if [ "$#" -ne 5 ]; then
  echo "usage: $0 LASH_GEN LASH_MINE LASH_SERVED LASH_SERVE WORKDIR" >&2
  exit 2
fi
# Absolute tool paths: the script cds into WORKDIR before running them.
GEN=$(readlink -f "$1")
MINE=$(readlink -f "$2")
SERVED=$(readlink -f "$3")
SERVE=$(readlink -f "$4")
DIR=$5

rm -rf "$DIR"
mkdir -p "$DIR"
cd "$DIR"

"$GEN" --kind nyt --sentences 300 --seed 42 \
       --save-snapshot full.snap --shards 2 2>gen.log

# --- Servers on ephemeral ports. -------------------------------------------
PIDS=()
cleanup() {
  kill "${PIDS[@]:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

start_server() {  # start_server NAME ARGS... ; port lands in NAME.port
  local name=$1
  shift
  # Every server writes its spans to NAME.trace.jsonl; the traced-mine
  # section below greps one shared trace id across all of them.
  "$SERVED" "$@" --port 0 --port-file "$name.port" \
            --trace-out "$name.trace.jsonl" --slow-ms 30000 2>"$name.log" &
  PIDS+=($!)
}
wait_port() {  # wait_port NAME -> prints the bound port
  local name=$1
  for _ in $(seq 1 100); do
    if [ -s "$name.port" ]; then
      cat "$name.port"
      return 0
    fi
    sleep 0.1
  done
  echo "net_smoke: timed out waiting for $name.port" >&2
  cat "$name.log" >&2 || true
  exit 1
}

start_server worker --snapshot full.snap
start_server shard0 --snapshot full.snap.shard0
start_server shard1 --snapshot full.snap.shard1
WORKER_PORT=$(wait_port worker)
SHARD0_PORT=$(wait_port shard0)
SHARD1_PORT=$(wait_port shard1)
start_server router --router \
             --workers "127.0.0.1:$SHARD0_PORT,127.0.0.1:$SHARD1_PORT"
ROUTER_PORT=$(wait_port router)

# --- The same queries, three ways. -----------------------------------------
# Two algorithms (hierarchical PSM and the flat MG-FSM rank space), mined
# locally from the snapshot vs through the wire. Sorted line sets must be
# identical: same patterns, same frequencies, same names.
run_query() {  # run_query ALGO SIGMA GAMMA OUT_PREFIX
  local algo=$1 sigma=$2 gamma=$3 prefix=$4
  "$MINE" --snapshot full.snap --algo "$algo" --sigma "$sigma" \
          --gamma "$gamma" --lambda 4 --output "$prefix.local.txt" 2>>mine.log
  echo "mine algo=$algo sigma=$sigma gamma=$gamma lambda=4" >q.script
  "$SERVE" --connect "127.0.0.1:$WORKER_PORT" --script q.script --print 0 \
           >"$prefix.worker.txt" 2>>serve.log
  "$SERVE" --connect "127.0.0.1:$ROUTER_PORT" --script q.script --print 0 \
           >"$prefix.router.txt" 2>>serve.log
  sort "$prefix.local.txt" >"$prefix.local.sorted"
  sort "$prefix.worker.txt" >"$prefix.worker.sorted"
  sort "$prefix.router.txt" >"$prefix.router.sorted"
  diff -u "$prefix.local.sorted" "$prefix.worker.sorted" >&2 || {
    echo "net_smoke: worker patterns diverge from lash_mine ($prefix)" >&2
    exit 1
  }
  diff -u "$prefix.local.sorted" "$prefix.router.sorted" >&2 || {
    echo "net_smoke: router patterns diverge from lash_mine ($prefix)" >&2
    exit 1
  }
  local count
  count=$(wc -l <"$prefix.local.sorted")
  if [ "$count" -eq 0 ]; then
    echo "net_smoke: $prefix query mined no patterns; the parity check" \
         "would be vacuous" >&2
    exit 1
  fi
  echo "net_smoke: $prefix parity ok ($count patterns)"
}

run_query sequential 8 0 seq
run_query sequential 8 1 gappy
# Flat MG-FSM counts exact items only (no hierarchy generalization), so the
# corpus supports far fewer repeats — σ=3 keeps the check non-vacuous.
run_query mgfsm 3 0 flat

# Top-k through the router: the merge must re-cut to exactly k patterns
# (tie-breaking may differ from lash_mine's, so only the count is asserted).
echo "mine algo=sequential sigma=8 gamma=0 lambda=4 top=7" >q.script
"$SERVE" --connect "127.0.0.1:$ROUTER_PORT" --script q.script --print 0 \
         >topk.router.txt 2>>serve.log
TOPK_LINES=$(wc -l <topk.router.txt)
if [ "$TOPK_LINES" -ne 7 ]; then
  echo "net_smoke: router top-k returned $TOPK_LINES patterns, want 7" >&2
  exit 1
fi
echo "net_smoke: router top-k re-cut ok"

# --- Traced mine: one trace id across the client, the router, and both
# shard workers. γ=2 λ=3 is fresh (no earlier query used it), so the
# router's phase-1 scatter legs (two-phase by default: σ'=⌈8/2⌉=4) are cold
# misses on both shards and the full pipeline — serve.request → serve.mine
# → mr.job — records on each, followed by the count phase's router.count
# legs and each shard's serve.count recount. lash_serve mints the root
# trace id (--trace-out enables tracing at the edge) and the id rides the
# kMineRequestV2 frame through the router to every worker.
echo "mine algo=lash sigma=8 gamma=2 lambda=3" >q.script
"$SERVE" --connect "127.0.0.1:$ROUTER_PORT" --script q.script --print 0 \
         --trace-out client.trace.jsonl >traced.router.txt 2>>serve.log
TRACE_ID=$(grep -o '"trace":"[0-9a-f]\{32\}"' client.trace.jsonl \
           | head -n1 | cut -d'"' -f4)
if [ -z "$TRACE_ID" ]; then
  echo "net_smoke: client wrote no trace id to client.trace.jsonl" >&2
  exit 1
fi
for name in router shard0 shard1; do
  grep -q "\"trace\":\"$TRACE_ID\"" "$name.trace.jsonl" || {
    echo "net_smoke: trace id $TRACE_ID missing from $name.trace.jsonl" >&2
    exit 1
  }
done
# The router recorded its scatter legs, the count phase, and the merge,
# and the shards their full serve pipeline plus the MapReduce timeline and
# the exact recount — all under the one id.
TRACED_ROUTER=$(grep "\"trace\":\"$TRACE_ID\"" router.trace.jsonl)
echo "$TRACED_ROUTER" | grep -q '"name":"router.scatter"'
echo "$TRACED_ROUTER" | grep -q '"name":"router.count"'
echo "$TRACED_ROUTER" | grep -q '"name":"router.merge"'
for name in shard0 shard1; do
  TRACED_SHARD=$(grep "\"trace\":\"$TRACE_ID\"" "$name.trace.jsonl")
  echo "$TRACED_SHARD" | grep -q '"name":"serve.request"'
  echo "$TRACED_SHARD" | grep -q '"name":"serve.mine"'
  echo "$TRACED_SHARD" | grep -q '"name":"mr.job"'
  echo "$TRACED_SHARD" | grep -q '"name":"serve.count"'
done
echo "net_smoke: one trace id spans client, router, and both shards ok," \
     "count phase included"

# --- Stats RPC: the worker served 4 queries (one was a repeat-free stream,
# so hits come from the router's shard_sigma probes only on shards; on the
# worker itself expect submitted>=4). The oversized_rejects counter must be
# present in the printout.
echo "stats" >q.script
"$SERVE" --connect "127.0.0.1:$WORKER_PORT" --script q.script \
         >stats.txt 2>>serve.log
grep -q "submitted=" stats.txt
grep -q "oversized_rejects=" stats.txt
# The metrics RPC rides along: the full registry snapshot follows the
# legacy stats line, covering the service, its executor and cache gauges,
# and the server's own wire instruments.
grep -q "^metrics: " stats.txt
grep -q "serve.requests.submitted " stats.txt
grep -q "serve.executor.queue_depth " stats.txt
grep -q "serve.cache.bytes " stats.txt
grep -q "serve.latency.mine_ms.count " stats.txt
grep -q "net.server.frames_in " stats.txt
echo "net_smoke: stats rpc + metrics snapshot ok"

# The router's own registry must show the count phase fired: every earlier
# σ=8 query pigeonholed to σ'=4 > 1, so router.count.requests counted two
# workers per query and the candidate/shipped volumes are non-zero.
echo "stats" >q.script
"$SERVE" --connect "127.0.0.1:$ROUTER_PORT" --script q.script \
         >router_stats.txt 2>>serve.log
grep -q "router.count.requests " router_stats.txt
grep -q "router.count.candidates " router_stats.txt
grep -q "router.count.patterns_shipped " router_stats.txt
grep -q "router.count.phase_ms.count " router_stats.txt
echo "net_smoke: router count-phase metrics ok"

# --- Graceful drain: SIGTERM must end every server with exit 0 and the
# drain epilogue on stderr.
for i in "${!PIDS[@]}"; do
  kill -TERM "${PIDS[$i]}"
done
for i in "${!PIDS[@]}"; do
  wait "${PIDS[$i]}" || {
    echo "net_smoke: server pid ${PIDS[$i]} exited non-zero on SIGTERM" >&2
    exit 1
  }
done
PIDS=()
for name in worker shard0 shard1 router; do
  grep -q "drained, exiting" "$name.log" || {
    echo "net_smoke: $name did not report a graceful drain" >&2
    exit 1
  }
done
echo "net_smoke: graceful drain ok"
echo "net_smoke: PASS"
