// lash_serve — drive a lash::serve::MiningService from a query script or an
// interactive REPL: the serving layer's command-line front end.
//
// Usage:
//   lash_serve (--sequences FILE --hierarchy FILE | --snapshot FILE |
//               --gen nyt|amzn ... | --connect HOST:PORT)
//              (--script FILE | --repl)
//              [--threads N] [--queue N] [--block] [--cache-mb N]
//              [--print K] [--seed N] [--save-snapshot FILE] [--mmap]
//
// --connect runs the same commands against a remote lash_served (worker or
// router) through net/client.h instead of an in-process service: `mine` is
// synchronous and prints the top --print patterns as frequency<TAB>names
// lines on stdout (summaries go to stderr, so piped pattern output stays
// clean; --print 0 prints every pattern), `stats` fetches the remote
// counters, `wait` is a no-op.
//   data generation (self-contained smoke runs, no input files needed;
//   recipes shared with the perf gates via datagen/corpus_recipes.h):
//              --gen nyt  [--sentences N] [--lemmas N]
//              --gen amzn [--sessions N] [--products N] [--levels 2..8]
//   --snapshot loads a one-file dataset snapshot (skips parsing and
//   preprocessing); --save-snapshot writes one after loading/generating.
//
// Script format (newline-delimited; '#' starts a comment):
//   mine key=value...   submit a query asynchronously
//       keys: algo sigma gamma lambda miner rewrite combiner flat filter top
//             threads shard deadline shard_sigma
//   shard_sigma overrides a router's phase-1 scatter threshold for that
//   query (0 = the router's default, the pigeonhole bound; only meaningful
//   with --connect against a router). --shard-sigma N sets the session
//   default for lines that don't say shard_sigma=.
//   wait                drain outstanding queries, printing one line each
//   stats               print a ServiceStats snapshot
// EOF implies a final `wait`. In --repl mode the same commands are read from
// stdin, `mine` waits synchronously (printing the top --print patterns), and
// `quit` exits.
//
// Exit code 2 on any configuration or script error (script mode is strict:
// a malformed line aborts the run).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/lash_api.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/mining_service.h"
#include "stats/filters.h"
#include "tools/arg_parse.h"
#include "tools/dataset_args.h"
#include "tools/obs_args.h"

namespace {

using namespace lash;
using namespace lash::serve;

struct ScriptError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

uint64_t ParseUint(const std::string& key, const std::string& value,
                   uint64_t max = std::numeric_limits<uint64_t>::max()) {
  uint64_t parsed = 0;
  if (!tools::ParseStrictUint64(value, &parsed) || parsed > max) {
    throw ScriptError("bad value for " + key + ": '" + value + "'");
  }
  return parsed;
}

RewriteLevel ParseRewriteLevel(const std::string& name) {
  if (name == "none") return RewriteLevel::kNone;
  if (name == "generalize") return RewriteLevel::kGeneralizeOnly;
  if (name == "full") return RewriteLevel::kFull;
  throw ScriptError("unknown rewrite '" + name + "' (use none|generalize|full)");
}

/// Parses the key=value tail of a `mine` line.
TaskSpec ParseSpec(std::istringstream& in) {
  TaskSpec spec;
  spec.params.sigma = 100;
  spec.params.lambda = 5;
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw ScriptError("expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "algo") {
      spec.algorithm = ParseAlgorithm(value);
    } else if (key == "sigma") {
      spec.params.sigma = ParseUint(key, value);
    } else if (key == "gamma") {
      spec.params.gamma = static_cast<uint32_t>(
          ParseUint(key, value, std::numeric_limits<uint32_t>::max()));
    } else if (key == "lambda") {
      spec.params.lambda = static_cast<uint32_t>(
          ParseUint(key, value, std::numeric_limits<uint32_t>::max()));
    } else if (key == "miner") {
      spec.miner = ParseMinerKind(value);
    } else if (key == "rewrite") {
      spec.rewrite = ParseRewriteLevel(value);
    } else if (key == "combiner") {
      if (value != "on" && value != "off") {
        throw ScriptError("combiner must be on|off");
      }
      spec.combiner = value == "on";
    } else if (key == "flat") {
      spec.flat = ParseUint(key, value) != 0;
    } else if (key == "filter") {
      spec.filter = ParsePatternFilter(value);
    } else if (key == "top") {
      spec.top_k = ParseUint(key, value);
    } else if (key == "threads") {
      spec.threads = ParseUint(key, value);
    } else if (key == "shard") {
      spec.shard = ParseUint(key, value);
    } else if (key == "deadline") {
      spec.deadline_ms = static_cast<double>(ParseUint(key, value));
    } else if (key == "shard_sigma") {
      spec.shard_sigma = ParseUint(key, value);
    } else {
      throw ScriptError("unknown mine key '" + key + "'");
    }
  }
  return spec;
}

void PrintStats(const ServiceStats& s) {
  std::printf(
      "stats: submitted=%llu hits=%llu misses=%llu coalesced=%llu "
      "invalid=%llu completed=%llu rejected=%llu cancelled=%llu "
      "deadline_expired=%llu failed=%llu executions=%llu\n",
      (unsigned long long)s.submitted, (unsigned long long)s.hits,
      (unsigned long long)s.misses, (unsigned long long)s.coalesced,
      (unsigned long long)s.invalid, (unsigned long long)s.completed,
      (unsigned long long)s.rejected, (unsigned long long)s.cancelled,
      (unsigned long long)s.deadline_expired, (unsigned long long)s.failed,
      (unsigned long long)s.executions);
  std::printf(
      "cache: entries=%llu bytes=%llu evictions=%llu "
      "oversized_rejects=%llu depth=%zu\n",
      (unsigned long long)s.cache_entries, (unsigned long long)s.cache_bytes,
      (unsigned long long)s.cache_evictions,
      (unsigned long long)s.cache_oversized_rejects, s.queue_depth);
  std::printf(
      "latency: hit p50=%.3fms p95=%.3fms mean=%.3fms | "
      "mine p50=%.1fms p95=%.1fms mean=%.1fms\n",
      s.hit_p50_ms, s.hit_p95_ms, s.hit_mean_ms, s.mine_p50_ms, s.mine_p95_ms,
      s.mine_mean_ms);
  std::fflush(stdout);
}

/// The full registry snapshot, one indented `name value` line per sample —
/// the live stats surface behind the fixed-format summary above.
void PrintMetrics(const std::vector<obs::MetricSample>& samples) {
  std::printf("metrics: %zu samples\n", samples.size());
  for (const obs::MetricSample& sample : samples) {
    std::printf("  %s %.6g\n", sample.name.c_str(), sample.value);
  }
  std::fflush(stdout);
}

/// One submitted-but-unprinted query.
struct Outstanding {
  size_t index;
  std::string line;
  PendingResult result;
};

void PrintResult(const MiningService& service, const Outstanding& out,
                 size_t print_top) {
  if (!out.result.ok()) {
    std::printf("[%zu] %s -> ERROR %s: %s\n", out.index, out.line.c_str(),
                ServeErrorCodeName(out.result.error_code()),
                out.result.error_message().c_str());
    return;
  }
  const Response& r = out.result.Get();
  const char* source = r.cache_hit ? "hit" : (r.coalesced ? "coalesced"
                                                          : "miss");
  std::printf("[%zu] %s -> %zu patterns, %s, %.2f ms\n", out.index,
              out.line.c_str(), r.patterns().size(), source, r.latency_ms);
  if (print_top > 0) {
    const Dataset& dataset = service.shard(0);
    auto top = TopK(r.patterns(), print_top);
    for (const auto& [seq, freq] : top) {
      std::string names;
      for (ItemId rank : seq) {
        if (!names.empty()) names += ' ';
        names += dataset.NameOfRank(rank, r.run().used_flat_hierarchy);
      }
      std::printf("    %llu\t%s\n", (unsigned long long)freq, names.c_str());
    }
  }
  std::fflush(stdout);
}

int RunCommands(std::istream& in, MiningService& service, bool interactive,
                size_t print_top) {
  std::vector<Outstanding> outstanding;
  size_t next_index = 0;
  auto drain = [&] {
    for (const Outstanding& out : outstanding) {
      PrintResult(service, out, interactive ? print_top : 0);
    }
    outstanding.clear();
  };

  std::string line;
  if (interactive) std::printf("lash> "), std::fflush(stdout);
  while (std::getline(in, line)) {
    try {
      std::istringstream tokens(line);
      std::string command;
      if (tokens >> command && command[0] != '#') {
        if (command == "mine") {
          TaskSpec spec = ParseSpec(tokens);
          spec.trace = tools::NewRequestTrace();
          Outstanding out{next_index++, line, service.Submit(spec)};
          if (interactive) {
            PrintResult(service, out, print_top);
          } else {
            outstanding.push_back(std::move(out));
          }
        } else if (command == "wait") {
          drain();
        } else if (command == "stats") {
          drain();
          PrintStats(service.Stats());
          PrintMetrics(service.metrics().Snapshot());
        } else if (interactive && (command == "quit" || command == "exit")) {
          return 0;
        } else {
          throw ScriptError("unknown command '" + command + "'");
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lash_serve: %s\n", e.what());
      if (!interactive) return 2;  // Script mode is strict.
    }
    if (interactive) std::printf("lash> "), std::fflush(stdout);
  }
  drain();
  return 0;
}

/// The --connect command loop: the same script grammar served by a remote
/// lash_served. Every mine is a synchronous round trip (the wire protocol
/// pipelines per connection, but a script is sequential anyway), so `wait`
/// has nothing to drain.
int RunNetworkCommands(std::istream& in, net::NetClient& client,
                       bool interactive, size_t print_top,
                       Frequency default_shard_sigma) {
  size_t next_index = 0;
  std::string line;
  if (interactive) std::printf("lash> "), std::fflush(stdout);
  while (std::getline(in, line)) {
    try {
      std::istringstream tokens(line);
      std::string command;
      if (tokens >> command && command[0] != '#') {
        if (command == "mine") {
          TaskSpec spec = ParseSpec(tokens);
          // --shard-sigma is the session default; a per-line shard_sigma=
          // wins. 0 leaves the router's own default (the pigeonhole bound).
          if (spec.shard_sigma == 0) spec.shard_sigma = default_shard_sigma;
          // Minted here, at the edge: the client.mine root span owns the
          // round trip, and its context rides the v2 wire message through
          // the router to every worker. Untraced runs stay v1.
          obs::Span root(&obs::Tracer::Global(), tools::NewRequestTrace(),
                         "client.mine");
          spec.trace = root.context();
          const size_t index = next_index++;
          try {
            const net::MineReply reply = client.Mine(spec);
            const char* source =
                reply.cache_hit ? "hit"
                                : (reply.coalesced ? "coalesced" : "miss");
            std::fprintf(stderr,
                         "[%zu] %s -> %zu patterns, %s, server %.2f ms, "
                         "round trip %.2f ms\n",
                         index, line.c_str(), reply.patterns.size(), source,
                         reply.server_ms, reply.round_trip_ms);
            const size_t limit =
                print_top == 0 ? reply.patterns.size()
                               : std::min(print_top, reply.patterns.size());
            for (size_t i = 0; i < limit; ++i) {
              std::string names;
              for (const std::string& item : reply.patterns[i].items) {
                if (!names.empty()) names += ' ';
                names += item;
              }
              std::printf("%llu\t%s\n",
                          (unsigned long long)reply.patterns[i].frequency,
                          names.c_str());
            }
            std::fflush(stdout);
          } catch (const ServeError& e) {
            std::fprintf(stderr, "[%zu] %s -> ERROR %s: %s\n", index,
                         line.c_str(), ServeErrorCodeName(e.code()), e.what());
            if (!interactive) return 2;
          }
        } else if (command == "wait") {
          // Synchronous client: nothing outstanding.
        } else if (command == "stats") {
          PrintStats(client.Stats());
          PrintMetrics(client.Metrics());
        } else if (interactive && (command == "quit" || command == "exit")) {
          return 0;
        } else {
          throw ScriptError("unknown command '" + command + "'");
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lash_serve: %s\n", e.what());
      if (!interactive) return 2;  // Script mode is strict.
    }
    if (interactive) std::printf("lash> "), std::fflush(stdout);
  }
  return 0;
}

int RealMain(const lash::tools::Args& args) {
  tools::MaybeOpenTraceFile(args);
  ServiceOptions options;
  options.executor_threads = args.GetInt("threads", 0);
  options.queue_capacity = args.GetInt("queue", 64);
  options.admission = args.Has("block") ? AdmissionPolicy::kBlock
                                        : AdmissionPolicy::kReject;
  options.cache_bytes = args.GetInt("cache-mb", 64) << 20;
  const size_t print_top = args.GetInt("print", 10);

  const bool repl = args.Has("repl");
  if (repl == args.Has("script")) {
    std::cerr << "lash_serve: pass exactly one of --script FILE or --repl\n";
    return 2;
  }

  if (args.Has("connect")) {
    const net::WorkerAddress address =
        net::ParseWorkerAddress(args.Require("connect"));
    net::ClientOptions client_options;
    client_options.io_timeout_ms =
        static_cast<int>(args.GetInt("io-timeout-ms", 0));
    net::NetClient client(address.host, address.port, client_options);
    const Frequency shard_sigma = args.GetInt("shard-sigma", 0);
    if (repl) {
      return RunNetworkCommands(std::cin, client, /*interactive=*/true,
                                print_top, shard_sigma);
    }
    const std::string script_path = args.Require("script");
    std::ifstream script(script_path);
    if (!script) {
      std::cerr << "lash_serve: cannot open script " << script_path << "\n";
      return 2;
    }
    return RunNetworkCommands(script, client, /*interactive=*/false,
                              print_top, shard_sigma);
  }

  // Load or generate the dataset before opening the script, so data errors
  // are reported first; exactly one source (text | snapshot | --gen, the
  // shared recipes of datagen/corpus_recipes.h) like every dataset tool.
  Dataset dataset = tools::LoadDatasetFromArgs(args, /*allow_gen=*/true);
  tools::VerifyIfMapped(dataset);
  tools::MaybeSaveSnapshot(args, dataset);
  std::fprintf(stderr,
               "serving dataset %llu: %zu sequences, %zu items "
               "(read %.1f ms, preprocess %.1f ms)\n",
               (unsigned long long)dataset.id(), dataset.NumSequences(),
               dataset.NumItems(), dataset.load_times().read_ms,
               dataset.load_times().preprocess_ms);

  MiningService service(dataset, options);
  if (repl) {
    return RunCommands(std::cin, service, /*interactive=*/true, print_top);
  }
  const std::string script_path = args.Require("script");
  std::ifstream script(script_path);
  if (!script) {
    std::cerr << "lash_serve: cannot open script " << script_path << "\n";
    return 2;
  }
  return RunCommands(script, service, /*interactive=*/false, print_top);
}

}  // namespace

int main(int argc, char** argv) {
  using lash::tools::Args;
  try {
    Args args(argc, argv, {{"sequences"},
                           {"hierarchy"},
                           {"snapshot"},
                           {"save-snapshot"},
                           {"mmap", false},
                           {"gen"},
                           {"sentences"},
                           {"lemmas"},
                           {"sessions"},
                           {"products"},
                           {"levels"},
                           {"seed"},
                           {"script"},
                           {"repl", false},
                           {"threads"},
                           {"queue"},
                           {"block", false},
                           {"cache-mb"},
                           {"print"},
                           {"connect"},
                           {"shard-sigma"},
                           {"io-timeout-ms"},
                           {"trace-out"}});
    if (args.Has("help")) {
      std::cout
          << "lash_serve (--sequences FILE --hierarchy FILE | --snapshot FILE"
             " | --gen nyt|amzn | --connect HOST:PORT) (--script FILE |"
             " --repl) [--threads N] [--queue N] [--block] [--cache-mb N]"
             " [--print K] [--io-timeout-ms N] [--shard-sigma N]"
             " [--trace-out FILE] [--save-snapshot FILE] [--mmap]\n"
             "script commands: mine key=value... | wait | stats\n"
             "--shard-sigma N (with --connect): default per-query router"
             " scatter threshold override; 0 = the router's pigeonhole"
             " default. Per line: mine ... shard_sigma=N\n";
      return 0;
    }
    return RealMain(args);
  } catch (const std::exception& e) {
    std::cerr << "lash_serve: " << e.what() << "\n";
    return 2;
  }
}
