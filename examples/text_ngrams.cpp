// Generalized n-gram mining on a synthetic NYT-like corpus (Sec. 6.2).
//
// Generates a corpus with the word -> case -> lemma -> POS hierarchy (CLP),
// mines contiguous generalized n-grams (gamma = 0), and reports:
//   * the mined pattern count and a sample of POS-level patterns
//     ("the ADJ NOUN" analogues that never occur literally), and
//   * Table-3 style output statistics (non-trivial / closed / maximal %).

#include <algorithm>
#include <iostream>
#include <vector>

#include "algo/lash.h"
#include "algo/mgfsm.h"
#include "datagen/text_gen.h"
#include "stats/output_stats.h"

int main() {
  using namespace lash;

  TextGenConfig gen;
  gen.num_sentences = 20000;
  gen.num_lemmas = 3000;
  gen.hierarchy = TextHierarchy::kCLP;
  GeneratedText data = GenerateText(gen);
  DatasetStats dstats = ComputeStats(data.database);
  std::cout << "Corpus: " << dstats.num_sequences << " sentences, avg length "
            << dstats.avg_length << ", " << dstats.unique_items
            << " distinct tokens, hierarchy levels "
            << data.hierarchy.NumLevels() << "\n";

  GsmParams params{.sigma = 100, .gamma = 0, .lambda = 5};
  JobConfig config;
  PreprocessResult pre =
      PreprocessWithJob(data.database, data.hierarchy, config);
  AlgoResult result = RunLash(pre, params, config);
  std::cout << "LASH mined " << result.patterns.size()
            << " generalized n-grams (sigma=" << params.sigma
            << ", lambda=" << params.lambda << ") in "
            << result.job.times.TotalMs() / 1000.0 << " s\n";

  // Show the most frequent patterns that contain at least one POS tag, i.e.
  // patterns invisible to a standard n-gram miner.
  std::vector<std::pair<Frequency, Sequence>> pos_patterns;
  for (const auto& [s, freq] : result.patterns) {
    bool has_pos = false;
    for (ItemId w : s) {
      if (data.hierarchy.IsRoot(pre.raw_of_rank[w])) has_pos = true;
    }
    if (has_pos) pos_patterns.emplace_back(freq, s);
  }
  std::sort(pos_patterns.rbegin(), pos_patterns.rend());
  std::cout << "\nTop POS-level generalized n-grams:\n";
  for (size_t i = 0; i < std::min<size_t>(10, pos_patterns.size()); ++i) {
    std::cout << "  " << pos_patterns[i].first << "\t";
    for (ItemId w : pos_patterns[i].second) {
      std::cout << data.vocabulary.Name(pre.raw_of_rank[w]) << ' ';
    }
    std::cout << "\n";
  }

  // Output statistics vs a flat (hierarchy-ignoring) miner on the same data.
  PreprocessResult flat_pre =
      PreprocessFlat(data.database, data.hierarchy.NumItems(), config);
  AlgoResult flat = RunLash(flat_pre, params, config);
  // Translate flat ranks -> raw ids -> hierarchical ranks.
  std::vector<ItemId> flat_to_gsm(flat_pre.raw_of_rank.size(), kInvalidItem);
  for (size_t r = 1; r < flat_pre.raw_of_rank.size(); ++r) {
    flat_to_gsm[r] = pre.rank_of_raw[flat_pre.raw_of_rank[r]];
  }
  PatternMap flat_patterns = RemapPatterns(flat.patterns, flat_to_gsm);
  OutputStatsResult ostats =
      ComputeOutputStats(result.patterns, flat_patterns, pre.hierarchy);
  std::cout << "\nOutput statistics (Table 3 style):\n"
            << "  total patterns : " << ostats.total << "\n"
            << "  non-trivial    : " << ostats.nontrivial_pct << " %\n"
            << "  closed         : " << ostats.closed_pct << " %\n"
            << "  maximal        : " << ostats.maximal_pct << " %\n";
  return 0;
}
