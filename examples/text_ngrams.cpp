// Generalized n-gram mining on a synthetic NYT-like corpus (Sec. 6.2).
//
// Generates a corpus with the word -> case -> lemma -> POS hierarchy (CLP),
// mines contiguous generalized n-grams (gamma = 0) through the facade, and
// reports:
//   * the mined pattern count and a sample of POS-level patterns
//     ("the ADJ NOUN" analogues that never occur literally), and
//   * Table-3 style output statistics (non-trivial / closed / maximal %),
//     using the same Dataset for the flat (hierarchy-stripped) baseline run.

#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "api/lash_api.h"
#include "datagen/text_gen.h"
#include "stats/output_stats.h"

int main() {
  using namespace lash;

  TextGenConfig gen;
  gen.num_sentences = 20000;
  gen.num_lemmas = 3000;
  gen.hierarchy = TextHierarchy::kCLP;
  GeneratedText data = GenerateText(gen);
  Dataset dataset =
      Dataset::FromMemory(std::move(data.database), std::move(data.vocabulary),
                          std::move(data.hierarchy));
  std::cout << "Corpus: " << dataset.stats().num_sequences
            << " sentences, avg length " << dataset.stats().avg_length << ", "
            << dataset.stats().unique_items
            << " distinct tokens, hierarchy levels "
            << dataset.raw_hierarchy().NumLevels() << "\n";

  MiningTask task(dataset);
  task.WithAlgorithm(Algorithm::kLash).WithSigma(100).WithGamma(0).WithLambda(
      5);
  RunResult result;
  PatternMap patterns = task.Mine(&result);
  std::cout << "LASH mined " << result.patterns_mined
            << " generalized n-grams (sigma=100, lambda=5) in "
            << result.job.times.TotalMs() / 1000.0 << " s\n";

  // Show the most frequent patterns that contain at least one POS tag, i.e.
  // patterns invisible to a standard n-gram miner.
  const PreprocessResult& pre = dataset.preprocessed();
  const Hierarchy& raw_h = dataset.raw_hierarchy();
  std::vector<std::pair<Frequency, Sequence>> pos_patterns;
  for (const auto& [s, freq] : patterns) {
    bool has_pos = false;
    for (ItemId w : s) {
      if (raw_h.IsRoot(pre.raw_of_rank[w])) has_pos = true;
    }
    if (has_pos) pos_patterns.emplace_back(freq, s);
  }
  std::sort(pos_patterns.rbegin(), pos_patterns.rend());
  std::cout << "\nTop POS-level generalized n-grams:\n";
  for (size_t i = 0; i < std::min<size_t>(10, pos_patterns.size()); ++i) {
    std::cout << "  " << pos_patterns[i].first << "\t";
    for (ItemId w : pos_patterns[i].second) {
      std::cout << dataset.NameOfRank(w) << ' ';
    }
    std::cout << "\n";
  }

  // Output statistics vs a flat (hierarchy-ignoring) miner on the same data:
  // the same task rerun with the hierarchy stripped, translated back into
  // the hierarchical rank space by the dataset.
  PatternMap flat = task.WithFlatHierarchy().Mine();
  PatternMap flat_patterns = dataset.FlatToHierarchicalRanks(flat);
  OutputStatsResult ostats =
      ComputeOutputStats(patterns, flat_patterns, pre.hierarchy);
  std::cout << "\nOutput statistics (Table 3 style):\n"
            << "  total patterns : " << ostats.total << "\n"
            << "  non-trivial    : " << ostats.nontrivial_pct << " %\n"
            << "  closed         : " << ostats.closed_pct << " %\n"
            << "  maximal        : " << ostats.maximal_pct << " %\n";
  return 0;
}
