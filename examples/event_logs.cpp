// Error-log pattern mining with a severity/type hierarchy (Sec. 1 mentions
// error logs and event sequences as natural applications).
//
// This example also demonstrates the file-loading path of the facade: it
// writes the log database and hierarchy to files, loads them back with
// Dataset::FromFiles (the "bring your own data" flow from the README), and
// mines generalized event patterns such as "IO_ERROR .. RESTART" that hold
// across concrete error codes.

#include <fstream>
#include <iostream>
#include <sstream>

#include "api/lash_api.h"
#include "io/text_io.h"
#include "util/rng.h"

int main() {
  using namespace lash;

  // 1. Build a synthetic fleet log: machines emit event sequences where a
  // concrete disk/net error is often followed by a retry and a restart.
  Vocabulary vocab;
  // Event-type hierarchy: concrete codes -> class -> family.
  ReadHierarchy(*[] {
    static std::istringstream edges(
        "disk_full\tIO_ERROR\n"
        "disk_timeout\tIO_ERROR\n"
        "net_reset\tNET_ERROR\n"
        "net_dns\tNET_ERROR\n"
        "IO_ERROR\tERROR\n"
        "NET_ERROR\tERROR\n"
        "retry_soft\tRETRY\n"
        "retry_hard\tRETRY\n");
    return &edges;
  }(), &vocab);

  Rng rng(2024);
  const char* io_errors[] = {"disk_full", "disk_timeout"};
  const char* net_errors[] = {"net_reset", "net_dns"};
  const char* retries[] = {"retry_soft", "retry_hard"};
  Database db;
  for (int machine = 0; machine < 5000; ++machine) {
    Sequence log;
    auto emit = [&](const char* name) { log.push_back(vocab.AddItem(name)); };
    size_t events = 3 + rng.Uniform(8);
    for (size_t i = 0; i < events; ++i) {
      double r = rng.NextDouble();
      if (r < 0.35) {
        // Fault motif: some concrete error, a retry, often a restart.
        emit(rng.Bernoulli(0.5) ? io_errors[rng.Uniform(2)]
                                : net_errors[rng.Uniform(2)]);
        emit(retries[rng.Uniform(2)]);
        if (rng.Bernoulli(0.7)) emit("restart");
      } else if (r < 0.6) {
        emit("heartbeat");
      } else if (r < 0.8) {
        emit("deploy");
      } else {
        emit("gc_pause");
      }
    }
    db.push_back(std::move(log));
  }

  // 2. Round-trip through the text formats, as an external user would.
  {
    std::ofstream dbf("/tmp/lash_example_logs.txt"),
        hf("/tmp/lash_example_hierarchy.txt");
    WriteDatabase(dbf, db, vocab);
    WriteHierarchy(hf, vocab);
  }
  Dataset dataset = Dataset::FromFiles("/tmp/lash_example_logs.txt",
                                       "/tmp/lash_example_hierarchy.txt");
  std::cout << "Loaded " << dataset.NumSequences() << " machine logs, "
            << dataset.NumItems() << " event types\n";

  // 3. Mine with a gap: a retry may sit between the error and the restart.
  MiningTask task(dataset);
  task.WithAlgorithm(Algorithm::kLash).WithSigma(200).WithGamma(1).WithLambda(
      4);
  RunResult result;
  PatternMap patterns = task.Mine(&result);

  std::cout << "Mined " << result.patterns_mined
            << " generalized event patterns (sigma=200, gamma=1)\n\n";
  // Print the class-level patterns ending in a restart.
  std::cout << "Class-level fault motifs ending in restart:\n";
  const PreprocessResult& pre = dataset.preprocessed();
  ItemId restart = dataset.RankOfName("restart");
  WritePatterns(std::cout, [&] {
    PatternMap filtered;
    for (const auto& [s, freq] : patterns) {
      if (s.back() != restart) continue;
      bool class_level = false;
      for (ItemId w : s) {
        if (!pre.hierarchy.IsLeaf(w)) class_level = true;
      }
      if (class_level) filtered.emplace(s, freq);
    }
    return filtered;
  }(), [&](ItemId rank) { return dataset.NameOfRank(rank); });
  std::cout << "\nPatterns like 'IO_ERROR RETRY restart' hold across concrete\n"
               "error codes and are invisible to a hierarchy-unaware miner.\n";
  return 0;
}
