// Market-basket sequence mining on a synthetic AMZN-like dataset (Sec. 1).
//
// The paper's motivating retail example: "users may first buy some camera,
// then some photography book, and finally some flash" — a pattern that only
// exists at the *category* level. This example generates product sessions
// with an 8-level category hierarchy, mines with a gap constraint, and
// prints the dominant category-level sequences.

#include <algorithm>
#include <iostream>
#include <vector>

#include "algo/lash.h"
#include "datagen/product_gen.h"

int main() {
  using namespace lash;

  ProductGenConfig gen;
  gen.num_sessions = 20000;
  gen.num_products = 5000;
  gen.levels = 8;
  GeneratedProducts data = GenerateProducts(gen);
  DatasetStats dstats = ComputeStats(data.database);
  std::cout << "Sessions: " << dstats.num_sequences << ", avg length "
            << dstats.avg_length << ", products+categories "
            << data.hierarchy.NumItems() << " (levels "
            << data.hierarchy.NumLevels() << ")\n";

  GsmParams params{.sigma = 50, .gamma = 1, .lambda = 5};
  JobConfig config;
  PreprocessResult pre =
      PreprocessWithJob(data.database, data.hierarchy, config);
  AlgoResult result = RunLash(pre, params, config);
  std::cout << "LASH mined " << result.patterns.size()
            << " generalized sequences (sigma=" << params.sigma
            << ", gamma=" << params.gamma << ", lambda=" << params.lambda
            << ") in " << result.job.times.TotalMs() / 1000.0 << " s\n";

  // Patterns consisting purely of category items (no literal products):
  // invisible to flat mining because individual products are rarely
  // repurchased in the same order.
  std::vector<std::pair<Frequency, Sequence>> category_patterns;
  for (const auto& [s, freq] : result.patterns) {
    bool all_categories = true;
    for (ItemId w : s) {
      if (data.hierarchy.IsLeaf(pre.raw_of_rank[w])) all_categories = false;
    }
    if (all_categories) category_patterns.emplace_back(freq, s);
  }
  std::sort(category_patterns.rbegin(), category_patterns.rend());
  std::cout << "\nTop category-level purchase sequences ("
            << category_patterns.size() << " total):\n";
  for (size_t i = 0; i < std::min<size_t>(10, category_patterns.size()); ++i) {
    std::cout << "  " << category_patterns[i].first << "\t";
    for (ItemId w : category_patterns[i].second) {
      std::cout << data.vocabulary.Name(pre.raw_of_rank[w]) << ' ';
    }
    std::cout << "\n";
  }
  std::cout << "\nEach pattern reads: a purchase from the first category is "
               "followed (within gamma=1 steps)\nby purchases from the next "
               "categories — the paper's camera -> book -> flash motif.\n";
  return 0;
}
