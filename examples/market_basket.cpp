// Market-basket sequence mining on a synthetic AMZN-like dataset (Sec. 1).
//
// The paper's motivating retail example: "users may first buy some camera,
// then some photography book, and finally some flash" — a pattern that only
// exists at the *category* level. This example generates product sessions
// with an 8-level category hierarchy, loads them into the facade, mines
// with a gap constraint, and prints the dominant category-level sequences.

#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "api/lash_api.h"
#include "datagen/product_gen.h"

int main() {
  using namespace lash;

  ProductGenConfig gen;
  gen.num_sessions = 20000;
  gen.num_products = 5000;
  gen.levels = 8;
  GeneratedProducts data = GenerateProducts(gen);
  Dataset dataset =
      Dataset::FromMemory(std::move(data.database), std::move(data.vocabulary),
                          std::move(data.hierarchy));
  std::cout << "Sessions: " << dataset.stats().num_sequences << ", avg length "
            << dataset.stats().avg_length << ", products+categories "
            << dataset.NumItems() << " (levels "
            << dataset.raw_hierarchy().NumLevels() << ")\n";

  MiningTask task(dataset);
  task.WithAlgorithm(Algorithm::kLash).WithSigma(50).WithGamma(1).WithLambda(5);
  RunResult result;
  PatternMap patterns = task.Mine(&result);
  std::cout << "LASH mined " << result.patterns_mined
            << " generalized sequences (sigma=50, gamma=1, lambda=5) in "
            << result.job.times.TotalMs() / 1000.0 << " s\n";

  // Patterns consisting purely of category items (no literal products):
  // invisible to flat mining because individual products are rarely
  // repurchased in the same order.
  const PreprocessResult& pre = dataset.preprocessed();
  const Hierarchy& raw_h = dataset.raw_hierarchy();
  std::vector<std::pair<Frequency, Sequence>> category_patterns;
  for (const auto& [s, freq] : patterns) {
    bool all_categories = true;
    for (ItemId w : s) {
      if (raw_h.IsLeaf(pre.raw_of_rank[w])) all_categories = false;
    }
    if (all_categories) category_patterns.emplace_back(freq, s);
  }
  std::sort(category_patterns.rbegin(), category_patterns.rend());
  std::cout << "\nTop category-level purchase sequences ("
            << category_patterns.size() << " total):\n";
  for (size_t i = 0; i < std::min<size_t>(10, category_patterns.size()); ++i) {
    std::cout << "  " << category_patterns[i].first << "\t";
    for (ItemId w : category_patterns[i].second) {
      std::cout << dataset.NameOfRank(w) << ' ';
    }
    std::cout << "\n";
  }
  std::cout << "\nEach pattern reads: a purchase from the first category is "
               "followed (within gamma=1 steps)\nby purchases from the next "
               "categories — the paper's camera -> book -> flash motif.\n";
  return 0;
}
