// Quickstart: mine the running example of the LASH paper (Fig. 1/2).
//
// Builds the six-sequence database and the b*/d* hierarchy from Sec. 2,
// runs LASH with sigma=2, gamma=1, lambda=3, and prints the ten frequent
// generalized sequences of the paper — including b1D and BD, which never
// occur literally in the data.

#include <iostream>

#include "algo/lash.h"
#include "core/vocabulary.h"
#include "io/text_io.h"

int main() {
  using namespace lash;

  // 1. Vocabulary + hierarchy: b1|b2|b3 -> B, b11|b12|b13 -> b1, d1|d2 -> D.
  Vocabulary vocab;
  vocab.AddItemWithParent("b1", "B");
  vocab.AddItemWithParent("b2", "B");
  vocab.AddItemWithParent("b3", "B");
  vocab.AddItemWithParent("b11", "b1");
  vocab.AddItemWithParent("b12", "b1");
  vocab.AddItemWithParent("b13", "b1");
  vocab.AddItemWithParent("d1", "D");
  vocab.AddItemWithParent("d2", "D");

  // 2. The sequence database of Fig. 1(a).
  auto seq = [&](std::initializer_list<const char*> names) {
    Sequence s;
    for (const char* name : names) s.push_back(vocab.AddItem(name));
    return s;
  };
  Database db = {
      seq({"a", "b1", "a", "b1"}),       // T1
      seq({"a", "b3", "c", "c", "b2"}),  // T2
      seq({"a", "c"}),                   // T3
      seq({"b11", "a", "e", "a"}),       // T4
      seq({"a", "b12", "d1", "c"}),      // T5
      seq({"b13", "f", "d2"}),           // T6
  };

  // 3. Preprocess (generalized f-list + item order) and run LASH.
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 4;
  PreprocessResult pre = PreprocessWithJob(db, vocab.BuildHierarchy(), config);
  AlgoResult result = RunLash(pre, params, config);

  // 4. Print patterns with their original names.
  std::cout << "Frequent generalized sequences (sigma=2, gamma=1, lambda=3):\n";
  WritePatterns(std::cout, result.patterns, [&](ItemId rank) {
    return vocab.Name(pre.raw_of_rank[rank]);
  });
  std::cout << "\nNote: 'b1 D' and 'B D' never occur in the input; they are\n"
               "visible only to hierarchy-aware mining (Sec. 2 of the paper).\n";
  return 0;
}
