// Quickstart: mine the running example of the LASH paper (Fig. 1/2)
// through the public facade (api/lash_api.h).
//
// Builds the six-sequence database and the b*/d* hierarchy from Sec. 2,
// loads it into a lash::Dataset (preprocessed once), runs a LASH
// MiningTask with sigma=2, gamma=1, lambda=3, and streams the ten frequent
// generalized sequences of the paper — including b1D and BD, which never
// occur literally in the data — into a TextWriterSink.

#include <iostream>

#include "api/lash_api.h"

int main() {
  using namespace lash;

  // 1. Vocabulary + hierarchy: b1|b2|b3 -> B, b11|b12|b13 -> b1, d1|d2 -> D.
  Vocabulary vocab;
  vocab.AddItemWithParent("b1", "B");
  vocab.AddItemWithParent("b2", "B");
  vocab.AddItemWithParent("b3", "B");
  vocab.AddItemWithParent("b11", "b1");
  vocab.AddItemWithParent("b12", "b1");
  vocab.AddItemWithParent("b13", "b1");
  vocab.AddItemWithParent("d1", "D");
  vocab.AddItemWithParent("d2", "D");

  // 2. The sequence database of Fig. 1(a).
  auto seq = [&](std::initializer_list<const char*> names) {
    Sequence s;
    for (const char* name : names) s.push_back(vocab.AddItem(name));
    return s;
  };
  Database db = {
      seq({"a", "b1", "a", "b1"}),       // T1
      seq({"a", "b3", "c", "c", "b2"}),  // T2
      seq({"a", "c"}),                   // T3
      seq({"b11", "a", "e", "a"}),       // T4
      seq({"a", "b12", "d1", "c"}),      // T5
      seq({"b13", "f", "d2"}),           // T6
  };

  // 3. Load the dataset (f-list + rank recoding happen once, here) and run
  // a LASH task; sinks stream the patterns with names already decoded.
  Dataset dataset = Dataset::FromMemory(std::move(db), std::move(vocab));
  JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 4;
  MiningTask task(dataset);
  task.WithAlgorithm(Algorithm::kLash)
      .WithSigma(2)
      .WithGamma(1)
      .WithLambda(3)
      .WithJobConfig(config);

  std::cout << "Frequent generalized sequences (sigma=2, gamma=1, lambda=3):\n";
  TextWriterSink sink(std::cout);
  task.Run(sink);
  std::cout << "\nNote: 'b1 D' and 'B D' never occur in the input; they are\n"
               "visible only to hierarchy-aware mining (Sec. 2 of the paper).\n";
  return 0;
}
